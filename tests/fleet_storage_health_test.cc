// Fleet-level storage health: a killed WAL writer is observable within
// one checkpoint cycle (failure-reason counters + storage_healthy), the
// engine drives compaction from the CheckpointWal barrier, and a degraded
// compactor (persistent ENOSPC) drops the engine to WAL-only mode without
// ever failing ingest.
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "service/fleet_engine.h"
#include "simulation/datasets.h"
#include "storage/compaction.h"
#include "storage/keypoint_wal.h"
#include "storage/manifest.h"

namespace bqs {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

class CountingSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint&) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++per_device_[device];
  }
  void OnSessionEnd(DeviceId, SessionEndReason) override {}
  std::size_t devices() const {
    std::lock_guard<std::mutex> lock(mu_);
    return per_device_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<DeviceId, std::size_t> per_device_;
};

FleetEngineOptions BaseOptions() {
  FleetEngineOptions options;
  options.algorithm.id = AlgorithmId::kFbqs;
  options.algorithm.epsilon = 8.0;
  options.num_shards = 0;  // inline: deterministic counter observation
  options.wal_checkpoint_points = 8;
  return options;
}

TEST(FleetStorageHealthTest, KilledWriterObservableWithinOneCheckpoint) {
  const FleetDataset fleet = BuildFleetDataset(4, 0.05, 5151);
  FaultInjector injector(/*seed=*/5);
  injector.Arm(FaultSite::kFsyncFail, /*probability=*/1.0, /*max_fires=*/1);

  KeyPointWalOptions wal_options;
  wal_options.dir = FreshDir("health_killed_writer");
  wal_options.durability = WalDurability::kFsyncEveryBatch;
  wal_options.fault_injector = &injector;
  KeyPointWal wal(wal_options);
  ASSERT_TRUE(wal.Open().ok());

  CountingSink sink;
  FleetEngineOptions options = BaseOptions();
  options.wal = &wal;
  FleetEngine engine(options, sink);

  // Healthy before anything fails.
  EXPECT_TRUE(engine.Stats().storage_healthy);

  // Feed half, force a durability barrier: the injected fsync failure
  // kills the writer and the very next stats snapshot says so.
  const std::size_t half = fleet.feed.size() / 2;
  engine.IngestBatch(
      std::span<const FleetRecord>(fleet.feed.data(), half));
  engine.CheckpointWal();
  {
    const FleetStats stats = engine.Stats();
    EXPECT_FALSE(stats.storage_healthy);
    EXPECT_GE(stats.wal_append_failures, 1u);
    EXPECT_EQ(stats.wal_failures_io, 1u);  // the append that hit the fault
    EXPECT_EQ(stats.wal_append_failures,
              stats.wal_failures_io + stats.wal_failures_writer_dead);
  }
  EXPECT_TRUE(wal.dead());
  EXPECT_FALSE(wal.stats().healthy());
  EXPECT_FALSE(wal.stats().last_error.empty());

  // Ingest never fails: the WAL is crash insurance, not the data path.
  engine.IngestBatch(std::span<const FleetRecord>(
      fleet.feed.data() + half, fleet.feed.size() - half));
  engine.CheckpointWal();
  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_GT(stats.key_points_emitted, 0u);
  EXPECT_GT(sink.devices(), 0u);
  // Later failures classify as writer-dead, not fresh I/O errors.
  EXPECT_EQ(stats.wal_failures_io, 1u);
  EXPECT_GE(stats.wal_failures_writer_dead, 1u);
  EXPECT_FALSE(stats.storage_healthy);
}

TEST(FleetStorageHealthTest, CheckpointBarrierDrivesCompaction) {
  const FleetDataset fleet = BuildFleetDataset(4, 0.05, 5252);
  KeyPointWalOptions wal_options;
  wal_options.dir = FreshDir("health_compact_wal");
  wal_options.segment_bytes = 512;  // force sealed segments
  KeyPointWal wal(wal_options);
  ASSERT_TRUE(wal.Open().ok());

  const std::string block_dir = FreshDir("health_compact_blk");
  CompactionOptions copts;
  copts.wal_dir = wal_options.dir;
  copts.block_dir = block_dir;
  Compactor compactor(copts);

  CountingSink sink;
  FleetEngineOptions options = BaseOptions();
  options.wal = &wal;
  options.compactor = &compactor;
  {
    FleetEngine engine(options, sink);
    engine.IngestBatch(fleet.feed);
    engine.CheckpointWal();
    const FleetStats stats = engine.Stats();
    EXPECT_EQ(stats.compaction_runs, 1u);
    EXPECT_EQ(stats.compaction_failures, 0u);
    EXPECT_TRUE(stats.storage_healthy);
    engine.FinishAll();
  }
  ASSERT_TRUE(wal.Close().ok());

  // The barrier really drained sealed segments into published blocks, and
  // blocks ∪ WAL tail carries every checkpointed point exactly once.
  EXPECT_GT(compactor.stats().segments_consumed, 0u);
  Manifest manifest;
  ASSERT_TRUE(ReadManifest(block_dir, &manifest).ok());
  Result<StoreRecovery> r = RecoverStore(wal_options.dir, block_dir);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().report.checkpoints_from_blocks, 0u);
  uint64_t recovered_points = 0;
  for (const wal::WalCheckpoint& c : r.value().wal.checkpoints) {
    recovered_points += c.points.size();
  }
  EXPECT_EQ(recovered_points, wal.stats().points_appended);
}

TEST(FleetStorageHealthTest, DegradedCompactorFallsBackToWalOnly) {
  const FleetDataset fleet = BuildFleetDataset(4, 0.05, 5353);
  KeyPointWalOptions wal_options;
  wal_options.dir = FreshDir("health_degraded_wal");
  wal_options.segment_bytes = 256;
  KeyPointWal wal(wal_options);
  ASSERT_TRUE(wal.Open().ok());
  // Pre-seed sealed segments so the first barrier has blocks to publish —
  // otherwise compaction is a no-op and never touches the full disk.
  for (int c = 0; c < 6; ++c) {
    std::vector<KeyPoint> keys;
    for (int i = 0; i < 16; ++i) {
      KeyPoint k;
      k.index = static_cast<uint64_t>(c) * 100 + static_cast<uint64_t>(i);
      k.point.t = 10.0 * c + i;
      k.point.pos = {1.0 * i, -1.0 * i};
      keys.push_back(k);
    }
    ASSERT_TRUE(wal.Append(99, keys).ok());
  }
  ASSERT_GT(wal.current_segment_index(), 1u);  // rotation really happened

  FaultInjector injector(/*seed=*/5);
  injector.Arm(FaultSite::kEnospc, /*probability=*/1.0);  // disk stays full
  const std::string block_dir = FreshDir("health_degraded_blk");
  CompactionOptions copts;
  copts.wal_dir = wal_options.dir;
  copts.block_dir = block_dir;
  copts.fault_injector = &injector;
  Compactor compactor(copts);

  CountingSink sink;
  FleetEngineOptions options = BaseOptions();
  options.wal = &wal;
  options.compactor = &compactor;
  FleetEngine engine(options, sink);

  const std::size_t half = fleet.feed.size() / 2;
  engine.IngestBatch(
      std::span<const FleetRecord>(fleet.feed.data(), half));
  engine.CheckpointWal();
  {
    const FleetStats stats = engine.Stats();
    EXPECT_EQ(stats.compaction_failures, 1u);
    EXPECT_EQ(stats.compaction_runs, 0u);
    EXPECT_FALSE(stats.storage_healthy);  // WAL-only mode
    // But the WAL itself is fine — appends keep succeeding.
    EXPECT_EQ(stats.wal_append_failures, 0u);
  }
  EXPECT_TRUE(compactor.degraded());
  EXPECT_FALSE(wal.dead());

  // Further barriers skip the degraded compactor entirely: the failure
  // counter is frozen and ingest keeps flowing.
  engine.IngestBatch(std::span<const FleetRecord>(
      fleet.feed.data() + half, fleet.feed.size() - half));
  engine.CheckpointWal();
  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.compaction_failures, 1u);
  EXPECT_EQ(stats.compaction_runs, 0u);
  EXPECT_GT(stats.key_points_emitted, 0u);
  EXPECT_EQ(stats.wal_append_failures, 0u);
  EXPECT_FALSE(stats.storage_healthy);

  // Space returns: reset + disarm, the next barrier compacts, and health
  // recovers — degradation is a mode, not a terminal state.
  injector.Arm(FaultSite::kEnospc, /*probability=*/0.0);
  compactor.ResetDegraded();
  engine.CheckpointWal();
  const FleetStats healed = engine.Stats();
  EXPECT_EQ(healed.compaction_runs, 1u);
  EXPECT_TRUE(healed.storage_healthy);
}

}  // namespace
}  // namespace bqs
