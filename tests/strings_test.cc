// String helpers: splitting, trimming, strict numeric parsing, printf.
#include "common/strings.h"

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("plain"), "plain");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts{"1", "2", "3"};
  EXPECT_EQ(Join(parts, ","), "1,2,3");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, ParseDoubleAcceptsNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1e99999").ok());
}

TEST(StringsTest, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

TEST(StringsTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrPrintf("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrPrintf("empty"), "empty");
}

}  // namespace
}  // namespace bqs
