// Spherical geodesy helpers and the local tangent plane.
#include "geo/geodesy.h"

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"

namespace bqs {
namespace {

TEST(GeodesyTest, HaversineKnownDistances) {
  // One degree of longitude at the equator ~ 111.2 km.
  EXPECT_NEAR(HaversineMeters({0, 0}, {0, 1}), 111195.0, 200.0);
  // One degree of latitude anywhere ~ 111.2 km.
  EXPECT_NEAR(HaversineMeters({-27, 153}, {-26, 153}), 111195.0, 200.0);
  EXPECT_DOUBLE_EQ(HaversineMeters({10, 20}, {10, 20}), 0.0);
}

TEST(GeodesyTest, HaversineSymmetric) {
  const LatLon a{-27.5, 153.0};
  const LatLon b{-26.9, 152.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeodesyTest, InitialBearingCardinals) {
  EXPECT_NEAR(InitialBearing({0, 0}, {1, 0}), 0.0, 1e-9);          // north
  EXPECT_NEAR(InitialBearing({0, 0}, {0, 1}), kHalfPi, 1e-9);      // east
  EXPECT_NEAR(InitialBearing({0, 0}, {-1, 0}), kPi, 1e-9);         // south
  EXPECT_NEAR(InitialBearing({0, 0}, {0, -1}), 1.5 * kPi, 1e-9);   // west
}

TEST(GeodesyTest, DestinationRoundTrip) {
  Rng rng(61);
  for (int i = 0; i < 500; ++i) {
    const LatLon origin{rng.Uniform(-60, 60), rng.Uniform(-179, 179)};
    const double bearing = rng.Uniform(0.0, kTwoPi);
    const double dist = rng.Uniform(10.0, 50000.0);
    const LatLon dest = DestinationPoint(origin, bearing, dist);
    EXPECT_NEAR(HaversineMeters(origin, dest), dist, dist * 1e-9 + 1e-6);
    EXPECT_NEAR(InitialBearing(origin, dest), bearing, 0.02);
  }
}

TEST(TangentPlaneTest, ProjectUnprojectRoundTrip) {
  const LocalTangentPlane plane({-27.47, 153.02});
  Rng rng(62);
  for (int i = 0; i < 500; ++i) {
    const LatLon pos{-27.47 + rng.Uniform(-0.2, 0.2),
                     153.02 + rng.Uniform(-0.2, 0.2)};
    const Vec2 xy = plane.Project(pos);
    const LatLon back = plane.Unproject(xy);
    EXPECT_NEAR(back.lat_deg, pos.lat_deg, 1e-12);
    EXPECT_NEAR(back.lon_deg, pos.lon_deg, 1e-12);
  }
}

TEST(TangentPlaneTest, OriginMapsToZero) {
  const LocalTangentPlane plane({-27.47, 153.02});
  const Vec2 xy = plane.Project({-27.47, 153.02});
  EXPECT_NEAR(xy.x, 0.0, 1e-9);
  EXPECT_NEAR(xy.y, 0.0, 1e-9);
}

TEST(TangentPlaneTest, DistancesMatchHaversineNearby) {
  const LatLon origin{-27.47, 153.02};
  const LocalTangentPlane plane(origin);
  Rng rng(63);
  for (int i = 0; i < 200; ++i) {
    const LatLon a{origin.lat_deg + rng.Uniform(-0.05, 0.05),
                   origin.lon_deg + rng.Uniform(-0.05, 0.05)};
    const LatLon b{origin.lat_deg + rng.Uniform(-0.05, 0.05),
                   origin.lon_deg + rng.Uniform(-0.05, 0.05)};
    const double planar = Distance(plane.Project(a), plane.Project(b));
    const double geodesic = HaversineMeters(a, b);
    if (geodesic < 5.0) continue;
    EXPECT_NEAR(planar / geodesic, 1.0, 0.002);
  }
}

TEST(TangentPlaneTest, AxesPointEastAndNorth) {
  const LocalTangentPlane plane({-27.47, 153.02});
  const Vec2 east = plane.Project({-27.47, 153.03});
  EXPECT_GT(east.x, 0.0);
  EXPECT_NEAR(east.y, 0.0, 1e-9);
  const Vec2 north = plane.Project({-27.46, 153.02});
  EXPECT_GT(north.y, 0.0);
  EXPECT_NEAR(north.x, 0.0, 1e-9);
}

}  // namespace
}  // namespace bqs
