// RecordBlock + BlockArena: the pooled routing chunks of the fleet ingest
// pipeline. Run coalescing on append, and the arena's recycle contract —
// blocks come back cleared (reuse-poisoning) with their heap capacity
// intact, and the counters tell allocation from reuse apart.
#include "service/record_block.h"

#include <vector>

#include "gtest/gtest.h"

namespace bqs {
namespace {

TrackPoint Pt(double x) { return TrackPoint{{x, 0.0}, x}; }

TEST(RecordBlockTest, AppendCoalescesConsecutiveSameDeviceRecords) {
  RecordBlock block;
  for (int i = 0; i < 3; ++i) block.Append(7, Pt(i));
  block.Append(9, Pt(10));
  block.Append(7, Pt(11));  // device 7 again, but not consecutive: new run
  block.Append(7, Pt(12));

  ASSERT_EQ(block.runs.size(), 3u);
  EXPECT_EQ(block.runs[0].device, 7u);
  EXPECT_EQ(block.runs[0].count, 3u);
  EXPECT_EQ(block.runs[1].device, 9u);
  EXPECT_EQ(block.runs[1].count, 1u);
  EXPECT_EQ(block.runs[2].device, 7u);
  EXPECT_EQ(block.runs[2].count, 2u);
  EXPECT_EQ(block.size(), 6u);

  // The run directory partitions the point array exactly.
  std::size_t covered = 0;
  for (const DeviceRun& run : block.runs) covered += run.count;
  EXPECT_EQ(covered, block.points.size());
}

TEST(RecordBlockTest, ClearKeepsCapacity) {
  RecordBlock block;
  for (int i = 0; i < 100; ++i) block.Append(1, Pt(i));
  const std::size_t point_cap = block.points.capacity();
  block.Clear();
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.runs.size(), 0u);
  EXPECT_EQ(block.points.capacity(), point_cap);
}

TEST(BlockArenaTest, AcquireAllocatesWhenPoolIsEmpty) {
  BlockArena arena(64, 4);
  RecordBlock* a = arena.Acquire();
  RecordBlock* b = arena.Acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.allocated(), 2u);
  EXPECT_EQ(arena.recycled(), 0u);
  // Fresh blocks arrive pre-reserved to the configured capacity, so the
  // router's appends never reallocate mid-block.
  EXPECT_GE(a->points.capacity(), 64u);
}

TEST(BlockArenaTest, ReleaseRecyclesClearedBlocksWithCapacity) {
  BlockArena arena(64, 4);
  RecordBlock* block = arena.Acquire();
  for (int i = 0; i < 64; ++i) block->Append(5, Pt(i));
  const std::size_t cap = block->points.capacity();

  // Reuse-poisoning: Release clears immediately, so a stale handle held
  // past this point reads as empty instead of replaying old records.
  arena.Release(block);
  EXPECT_TRUE(block->empty());
  EXPECT_TRUE(block->runs.empty());

  RecordBlock* again = arena.Acquire();
  EXPECT_EQ(again, block);  // LIFO-ish reuse of the one pooled block
  EXPECT_TRUE(again->empty());
  EXPECT_EQ(again->points.capacity(), cap);  // heap survived the cycle
  EXPECT_EQ(arena.allocated(), 1u);
  EXPECT_EQ(arena.recycled(), 1u);
}

TEST(BlockArenaTest, RecycleOutlivesManyCycles) {
  BlockArena arena(16, 2);
  RecordBlock* first = arena.Acquire();
  arena.Release(first);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    RecordBlock* block = arena.Acquire();
    ASSERT_TRUE(block->empty()) << "cycle " << cycle;
    for (int i = 0; i < 16; ++i) block->Append(1, Pt(i));
    arena.Release(block);
  }
  // Steady state never allocates: one block serves every cycle.
  EXPECT_EQ(arena.allocated(), 1u);
  EXPECT_EQ(arena.recycled(), 1000u);
}

TEST(BlockArenaTest, ManyOutstandingBlocksStayIndependent) {
  BlockArena arena(8, 3);
  std::vector<RecordBlock*> held;
  for (int i = 0; i < 5; ++i) {
    RecordBlock* block = arena.Acquire();
    block->Append(static_cast<DeviceId>(i), Pt(i));
    held.push_back(block);
  }
  // Five live blocks, each with its own contents.
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(held[static_cast<std::size_t>(i)]->runs.size(), 1u);
    EXPECT_EQ(held[static_cast<std::size_t>(i)]->runs[0].device,
              static_cast<DeviceId>(i));
  }
  for (RecordBlock* block : held) arena.Release(block);
  // All five fit back in the recycle ring (depth + 2), so the next five
  // acquires are pure reuse.
  const uint64_t allocated_before = arena.allocated();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(arena.Acquire()->empty());
  EXPECT_EQ(arena.allocated(), allocated_before);
  EXPECT_EQ(arena.recycled(), 5u);
}

}  // namespace
}  // namespace bqs
