// MANIFEST codec and atomic publication: round-trips, totality on
// corrupted bytes (every truncation and every byte flip must reject —
// never mis-decode), file naming, and the injected failure modes of
// WriteFileAtomic (ENOSPC classification, rename failure leaves the old
// manifest intact).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "storage/manifest.h"

namespace bqs {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Manifest SampleManifest() {
  Manifest m;
  m.quant.time_quantum = 1e-3;
  m.quant.coord_quantum = 1e-3;
  m.last_applied_seq = 41;

  ManifestBlockFile file;
  file.file_id = 7;
  file.file_bytes = 12345;
  ManifestBlockEntry a;
  a.offset = 32;
  a.meta.device = 3;
  a.meta.first_seq = 10;
  a.meta.last_seq = 20;
  a.meta.checkpoint_count = 4;
  a.meta.point_count = 64;
  a.meta.qt_min = -5;
  a.meta.qt_max = 5000;
  a.meta.qx_min = -1000000;
  a.meta.qx_max = 1000000;
  a.meta.qy_min = 17;
  a.meta.qy_max = 17000;
  file.blocks.push_back(a);
  ManifestBlockEntry b = a;
  b.offset = 900;
  b.meta.device = 9;
  b.meta.first_seq = 21;
  b.meta.last_seq = 41;
  file.blocks.push_back(b);
  m.files.push_back(file);

  ManifestBlockFile empty_file;
  empty_file.file_id = 8;
  empty_file.file_bytes = 32;
  m.files.push_back(empty_file);
  return m;
}

std::span<const uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(ManifestCodecTest, RoundTripsEmptyAndPopulated) {
  for (const Manifest& m : {Manifest{}, SampleManifest()}) {
    std::string bytes;
    EncodeManifest(m, &bytes);
    Manifest decoded;
    ASSERT_TRUE(DecodeManifest(AsBytes(bytes), &decoded));
    EXPECT_TRUE(decoded == m);
  }
}

TEST(ManifestCodecTest, EveryTruncationRejects) {
  std::string bytes;
  EncodeManifest(SampleManifest(), &bytes);
  Manifest decoded;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string prefix = bytes.substr(0, cut);
    EXPECT_FALSE(DecodeManifest(AsBytes(prefix), &decoded))
        << "prefix of " << cut << " bytes decoded";
  }
  // Trailing garbage after a valid image rejects too (all-or-nothing).
  const std::string padded = bytes + '\0';
  EXPECT_FALSE(DecodeManifest(AsBytes(padded), &decoded));
}

TEST(ManifestCodecTest, EveryByteFlipRejects) {
  std::string bytes;
  EncodeManifest(SampleManifest(), &bytes);
  Manifest decoded;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_FALSE(DecodeManifest(AsBytes(corrupt), &decoded))
        << "flip at byte " << i << " decoded";
  }
}

TEST(ManifestCodecTest, BlockFileNaming) {
  EXPECT_EQ(BlockFileName(1), "blk-000001.bqb");
  EXPECT_EQ(BlockTempFileName(1), "blk-000001.bqb.tmp");
  uint64_t id = 0;
  EXPECT_TRUE(ParseBlockFileName("blk-000042.bqb", &id));
  EXPECT_EQ(id, 42u);
  EXPECT_TRUE(ParseBlockFileName("blk-7.bqb", &id));  // any digit count
  EXPECT_EQ(id, 7u);
  EXPECT_FALSE(ParseBlockFileName("blk-000042.bqb.tmp", &id));
  EXPECT_FALSE(ParseBlockFileName("blk-.bqb", &id));
  EXPECT_FALSE(ParseBlockFileName("blk-12x.bqb", &id));
  EXPECT_FALSE(ParseBlockFileName("wal-000001.log", &id));
  EXPECT_FALSE(ParseBlockFileName("MANIFEST", &id));
}

TEST(ManifestIoTest, WriteReadRoundTripAndNotFound) {
  const std::string dir = FreshDir("manifest_io");
  Manifest m;
  EXPECT_EQ(ReadManifest(dir, &m).code(), StatusCode::kNotFound);

  const Manifest written = SampleManifest();
  ASSERT_TRUE(WriteManifest(dir, written).ok());
  ASSERT_TRUE(ReadManifest(dir, &m).ok());
  EXPECT_TRUE(m == written);
  // No temp debris after a clean publication.
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST.tmp"));

  // Rewrite with new content: the rename replaces atomically.
  Manifest next = written;
  next.last_applied_seq = 99;
  ASSERT_TRUE(WriteManifest(dir, next).ok());
  ASSERT_TRUE(ReadManifest(dir, &m).ok());
  EXPECT_EQ(m.last_applied_seq, 99u);
}

TEST(ManifestIoTest, CorruptManifestReadsAsCorruption) {
  const std::string dir = FreshDir("manifest_corrupt");
  {
    std::ofstream out(dir + "/MANIFEST", std::ios::binary);
    out << "not a manifest";
  }
  Manifest m;
  EXPECT_EQ(ReadManifest(dir, &m).code(), StatusCode::kCorruption);
}

TEST(ManifestIoTest, InjectedEnospcClassifies) {
  const std::string dir = FreshDir("manifest_enospc");
  FaultInjector injector(/*seed=*/1);
  injector.Arm(FaultSite::kEnospc, /*probability=*/1.0, /*max_fires=*/1);
  const Status st = WriteManifest(dir, SampleManifest(), &injector);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(IsEnospc(st)) << st.message();
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST"));
  // Once the injected firing is spent, the same call succeeds.
  ASSERT_TRUE(WriteManifest(dir, SampleManifest(), &injector).ok());
  EXPECT_FALSE(IsEnospc(Status::OK()));
  EXPECT_FALSE(IsEnospc(Status::IoError("something else")));
}

TEST(ManifestIoTest, InjectedRenameFailureLeavesOldManifest) {
  const std::string dir = FreshDir("manifest_rename");
  const Manifest old_manifest = SampleManifest();
  ASSERT_TRUE(WriteManifest(dir, old_manifest).ok());

  Manifest next = old_manifest;
  next.last_applied_seq = 777;
  FaultInjector injector(/*seed=*/1);
  injector.Arm(FaultSite::kRenameFail, /*probability=*/1.0, /*max_fires=*/1);
  const Status st = WriteManifest(dir, next, &injector);
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(IsEnospc(st));
  // The failed publication left the previous manifest untouched (the temp
  // file may remain — that is what the compactor's quarantine is for).
  Manifest m;
  ASSERT_TRUE(ReadManifest(dir, &m).ok());
  EXPECT_TRUE(m == old_manifest);
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.tmp"));
}

TEST(ManifestIoTest, CrashPointAbortsBetweenTempAndRename) {
  const std::string dir = FreshDir("manifest_crashpoint");
  int calls = 0;
  const Status st = WriteFileAtomic(
      dir, "MANIFEST", "payload", nullptr, [&]() -> Status {
        ++calls;
        return Status::IoError("simulated crash");
      });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);  // died at the first crash point: after temp durable
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.tmp"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST"));
}

}  // namespace
}  // namespace bqs
