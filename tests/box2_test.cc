// Box2: extension, containment, and the ray-intersection machinery that
// locates the BQS significant points.
#include "geometry/box2.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(Box2Test, DefaultIsEmpty) {
  Box2 box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.Contains({0.0, 0.0}));
}

TEST(Box2Test, ExtendGrowsToCover) {
  Box2 box;
  box.Extend({1.0, 2.0});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({1.0, 2.0}));
  box.Extend({-3.0, 5.0});
  EXPECT_EQ(box.min(), (Vec2{-3.0, 2.0}));
  EXPECT_EQ(box.max(), (Vec2{1.0, 5.0}));
  EXPECT_DOUBLE_EQ(box.Width(), 4.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
  EXPECT_DOUBLE_EQ(box.Area(), 12.0);
  EXPECT_EQ(box.Center(), (Vec2{-1.0, 3.5}));
}

TEST(Box2Test, ExtendWithBox) {
  Box2 a({0, 0}, {1, 1});
  const Box2 b({5, -2}, {6, 0});
  a.Extend(b);
  EXPECT_EQ(a.min(), (Vec2{0.0, -2.0}));
  EXPECT_EQ(a.max(), (Vec2{6.0, 1.0}));
  Box2 empty;
  a.Extend(empty);  // no-op
  EXPECT_EQ(a.max(), (Vec2{6.0, 1.0}));
}

TEST(Box2Test, CornersAreCcwFromMin) {
  const Box2 box({1, 2}, {3, 5});
  const auto c = box.Corners();
  EXPECT_EQ(c[0], (Vec2{1, 2}));
  EXPECT_EQ(c[1], (Vec2{3, 2}));
  EXPECT_EQ(c[2], (Vec2{3, 5}));
  EXPECT_EQ(c[3], (Vec2{1, 5}));
}

TEST(Box2Test, RayHitsFromOutside) {
  const Box2 box({2, -1}, {4, 1});
  const auto hit = box.IntersectRay({0, 0}, {1, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->entry.x, 2.0, 1e-12);
  EXPECT_NEAR(hit->exit.x, 4.0, 1e-12);
  EXPECT_LE(hit->t_entry, hit->t_exit);
}

TEST(Box2Test, RayStartingInsideEntersAtOrigin) {
  const Box2 box({-1, -1}, {1, 1});
  const auto hit = box.IntersectRay({0, 0}, {1, 1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->t_entry, 0.0);
  EXPECT_NEAR(hit->exit.x, 1.0, 1e-12);
  EXPECT_NEAR(hit->exit.y, 1.0, 1e-12);
}

TEST(Box2Test, RayMisses) {
  const Box2 box({2, 2}, {3, 3});
  EXPECT_FALSE(box.IntersectRay({0, 0}, {1, 0}).has_value());
  EXPECT_FALSE(box.IntersectRay({0, 0}, {-1, -1}).has_value());
}

TEST(Box2Test, RayParallelToSlab) {
  const Box2 box({2, -1}, {4, 1});
  // Parallel to y slab, inside it.
  const auto hit = box.IntersectRay({0, 0.5}, {1, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(hit->entry.x, 2.0, 1e-12);
  // Parallel, outside the slab.
  EXPECT_FALSE(box.IntersectRay({0, 5}, {1, 0}).has_value());
}

TEST(Box2Test, ZeroDirectionInsideIsPointHit) {
  const Box2 box({-1, -1}, {1, 1});
  const auto hit = box.IntersectRay({0.5, 0.5}, {0, 0});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->entry, (Vec2{0.5, 0.5}));
  EXPECT_FALSE(box.IntersectRay({5, 5}, {0, 0}).has_value());
}

TEST(Box2Test, RayThroughInteriorPointAlwaysHits) {
  // Property: a ray from the origin through any point inside the box must
  // intersect the box with entry before and exit after that point.
  Rng rng(12);
  for (int iter = 0; iter < 2000; ++iter) {
    const Vec2 mn{rng.Uniform(0.5, 50), rng.Uniform(0.5, 50)};
    const Vec2 mx{mn.x + rng.Uniform(0.01, 50), mn.y + rng.Uniform(0.01, 50)};
    const Box2 box(mn, mx);
    const Vec2 inside{rng.Uniform(mn.x, mx.x), rng.Uniform(mn.y, mx.y)};
    const auto hit = box.IntersectRay({0, 0}, inside);
    ASSERT_TRUE(hit.has_value());
    EXPECT_LE(hit->t_entry, 1.0 + 1e-9);
    EXPECT_GE(hit->t_exit, 1.0 - 1e-9);
    // Entry lies on the box boundary up to floating-point slack.
    const Box2 slack(box.min() - Vec2{1e-6, 1e-6},
                     box.max() + Vec2{1e-6, 1e-6});
    EXPECT_TRUE(slack.Contains(hit->entry));
    EXPECT_TRUE(slack.Contains(hit->exit));
  }
}

TEST(Box2Test, DegeneratePointBox) {
  const Box2 box({3, 3}, {3, 3});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains({3, 3}));
  const auto hit = box.IntersectRay({0, 0}, {1, 1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(Distance(hit->entry, {3, 3}), 0.0, 1e-9);
  EXPECT_NEAR(Distance(hit->exit, {3, 3}), 0.0, 1e-9);
}

}  // namespace
}  // namespace bqs
