// 3-D BQS: bound sandwich property per octant, end-to-end error bound of
// the compressor in both exact and fast mode, and the clipped-hull vs
// paper-significant-point comparison.
#include "core/bqs3d_compressor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bounds3d.h"
#include "geometry/line3.h"

namespace bqs {
namespace {

Vec3 RandomPointInOctant(Rng& rng, int octant, double lo, double hi) {
  Vec3 p{rng.Uniform(lo, hi), rng.Uniform(lo, hi), rng.Uniform(lo, hi)};
  if (octant & 1) p.x = -p.x;
  if (octant & 2) p.y = -p.y;
  if (octant & 4) p.z = -p.z;
  return p;
}

double ExactMax3(const std::vector<Vec3>& points, Vec3 end,
                 DistanceMetric metric) {
  double best = 0.0;
  for (const Vec3& p : points) {
    const double d = metric == DistanceMetric::kPointToLine
                         ? PointToLineDistance3(p, Vec3{}, end)
                         : PointToSegmentDistance3(p, Vec3{}, end);
    best = std::max(best, d);
  }
  return best;
}

// 3-D random walk with stops and spikes.
std::vector<TrackPoint3> Walk3(uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<TrackPoint3> out;
  out.reserve(n);
  Vec3 pos{};
  for (std::size_t i = 0; i < n; ++i) {
    const int mode = static_cast<int>(rng.UniformInt(0, 3));
    switch (mode) {
      case 0:
        pos = pos + Vec3{rng.Normal(0.0, 5.0), rng.Normal(0.0, 5.0),
                         rng.Normal(0.0, 2.0)};
        break;
      case 1:
        break;  // stationary
      case 2:
        pos = pos + Vec3{8.0, 3.0, 1.0};
        break;
      default:
        pos = pos + Vec3{rng.Uniform(-50.0, 50.0), rng.Uniform(-50.0, 50.0),
                         rng.Uniform(-20.0, 20.0)};
        break;
    }
    out.push_back(TrackPoint3{pos, static_cast<double>(i)});
  }
  return out;
}

class Bounds3dPropertyTest
    : public ::testing::TestWithParam<std::tuple<Bounds3dMode, int>> {};

TEST_P(Bounds3dPropertyTest, SandwichesExactDeviation) {
  const auto [mode, octant] = GetParam();
  Rng rng(100u + static_cast<uint64_t>(octant));
  const bool safe_mode = mode == Bounds3dMode::kClippedHull;

  int upper_violations = 0;
  for (int iter = 0; iter < 600; ++iter) {
    OctantBound ob(octant);
    std::vector<Vec3> points;
    const int n = static_cast<int>(rng.UniformInt(1, 25));
    for (int i = 0; i < n; ++i) {
      const Vec3 p = RandomPointInOctant(rng, octant, 0.2, 120.0);
      ob.Add(p);
      points.push_back(p);
    }
    Vec3 end = iter % 2 == 0
                   ? RandomPointInOctant(rng, octant, 1.0, 200.0)
                   : Vec3{rng.Uniform(-200.0, 200.0),
                          rng.Uniform(-200.0, 200.0),
                          rng.Uniform(-200.0, 200.0)};
    if (end == Vec3{}) end = Vec3{1.0, 1.0, 1.0};

    const double exact =
        ExactMax3(points, end, DistanceMetric::kPointToLine);
    const DeviationBounds bounds =
        OctantDeviationBounds(ob, end, DistanceMetric::kPointToLine, mode);
    const double tol = 1e-6 * (1.0 + exact);
    EXPECT_LE(bounds.lower, exact + tol) << "octant " << octant;
    if (bounds.upper < exact - tol) ++upper_violations;
  }
  if (safe_mode) {
    EXPECT_EQ(upper_violations, 0)
        << "clipped-hull upper bound must never under-estimate";
  }
  // The paper's 17-point scheme is reported, not asserted: its polyhedron
  // can shave corners in rare configurations (see DESIGN.md).
  if (!safe_mode && upper_violations > 0) {
    GTEST_LOG_(INFO) << "paper-significant mode under-estimated "
                     << upper_violations << "/600 times in octant "
                     << octant;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndOctants, Bounds3dPropertyTest,
    ::testing::Combine(::testing::Values(Bounds3dMode::kClippedHull,
                                         Bounds3dMode::kPaperSignificant),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7)),
    [](const auto& naming_info) {
      const Bounds3dMode mode = std::get<0>(naming_info.param);
      const int octant = std::get<1>(naming_info.param);
      return std::string(mode == Bounds3dMode::kClippedHull ? "Hull"
                                                            : "Paper") +
             "O" + std::to_string(octant);
    });

class Bqs3dErrorBoundTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(Bqs3dErrorBoundTest, CompressionIsErrorBounded) {
  const auto [seed, exact_mode] = GetParam();
  const auto walk = Walk3(seed, 2000);
  Bqs3dOptions options;
  options.epsilon = 6.0;
  options.mode = Bounds3dMode::kClippedHull;
  Bqs3dCompressor compressor(options, exact_mode);
  const CompressedTrajectory3 compressed =
      Compress3dAll(compressor, walk);
  const DeviationReport report =
      Evaluate3dCompression(walk, compressed, options.metric);
  EXPECT_LE(report.max_deviation, options.epsilon * (1.0 + 1e-9))
      << "seed=" << seed << " exact=" << exact_mode;
  EXPECT_GE(compressed.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, Bqs3dErrorBoundTest,
    ::testing::Combine(::testing::Values(7u, 8u, 9u),
                       ::testing::Bool()));

TEST(Bqs3dCompressorTest, ExactModeNeverTakesMorePointsThanFast) {
  const auto walk = Walk3(17, 3000);
  Bqs3dOptions options;
  options.epsilon = 8.0;
  Bqs3dCompressor exact(options, /*exact_mode=*/true);
  Bqs3dCompressor fast(options, /*exact_mode=*/false);
  const auto via_exact = Compress3dAll(exact, walk);
  const auto via_fast = Compress3dAll(fast, walk);
  EXPECT_LE(via_exact.size(), via_fast.size());
}

TEST(Bqs3dCompressorTest, FlatWalkMatchesPlanarIntuition) {
  // A z = 0 walk must compress without ever exceeding the 2-D deviation.
  auto walk = Walk3(23, 1500);
  for (auto& p : walk) p.pos.z = 0.0;
  Bqs3dOptions options;
  options.epsilon = 5.0;
  Bqs3dCompressor compressor(options, /*exact_mode=*/false);
  const auto compressed = Compress3dAll(compressor, walk);
  const DeviationReport report =
      Evaluate3dCompression(walk, compressed, options.metric);
  EXPECT_LE(report.max_deviation, options.epsilon * (1.0 + 1e-9));
}

TEST(Bqs3dCompressorTest, StationaryStreamCompressesToTwo) {
  std::vector<TrackPoint3> walk(200, TrackPoint3{{1.0, 2.0, 3.0}, 0.0});
  for (std::size_t i = 0; i < walk.size(); ++i) {
    walk[i].t = static_cast<double>(i);
  }
  Bqs3dCompressor compressor(Bqs3dOptions{}, false);
  const auto compressed = Compress3dAll(compressor, walk);
  EXPECT_EQ(compressed.size(), 2u);
}

TEST(Bqs3dCompressorTest, StatsCoverEveryPoint) {
  const auto walk = Walk3(29, 2000);
  Bqs3dCompressor compressor(Bqs3dOptions{}, false);
  Compress3dAll(compressor, walk);
  EXPECT_EQ(compressor.stats().points, walk.size());
}

TEST(Bqs3dCompressorTest, LineToRectDistanceAgreesWithSampling) {
  Rng rng(31);
  for (int iter = 0; iter < 200; ++iter) {
    const Vec3 a{rng.Uniform(-50, 50), rng.Uniform(-50, 50),
                 rng.Uniform(-50, 50)};
    const Vec3 b{rng.Uniform(-50, 50), rng.Uniform(-50, 50),
                 rng.Uniform(-50, 50)};
    const Vec3 origin{rng.Uniform(-20, 20), rng.Uniform(-20, 20),
                      rng.Uniform(-20, 20)};
    const Vec3 e0{rng.Uniform(1, 30), 0.0, 0.0};
    const Vec3 e1{0.0, rng.Uniform(1, 30), 0.0};
    const std::array<Vec3, 4> rect{origin, origin + e0, origin + e0 + e1,
                                   origin + e1};
    const double computed = LineToRectDistance(a, b, rect);
    // Dense sampling of the rectangle gives an upper bound on the true
    // distance; the computed value must not exceed any sample distance.
    double sampled = 1e100;
    for (int i = 0; i <= 20; ++i) {
      for (int j = 0; j <= 20; ++j) {
        const Vec3 p = origin + e0 * (i / 20.0) + e1 * (j / 20.0);
        sampled = std::min(sampled, PointToLineDistance3(p, a, b));
      }
    }
    EXPECT_LE(computed, sampled + 1e-6);
    EXPECT_GE(computed, -1e-12);
  }
}

}  // namespace
}  // namespace bqs
