// Invariants of the per-quadrant bounding structure (paper Section V-B).
#include "core/quadrant_bound.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"
#include "geometry/angle.h"

namespace bqs {
namespace {

Vec2 PointAt(double r, double theta) {
  return {r * std::cos(theta), r * std::sin(theta)};
}

TEST(QuadrantBoundTest, StartsEmptyAndResets) {
  QuadrantBound qb(2);
  EXPECT_TRUE(qb.empty());
  EXPECT_EQ(qb.quadrant(), 2);
  qb.Add({-3.0, -4.0});
  EXPECT_FALSE(qb.empty());
  EXPECT_EQ(qb.count(), 1u);
  qb.Reset();
  EXPECT_TRUE(qb.empty());
  EXPECT_EQ(qb.quadrant(), 2);
}

TEST(QuadrantBoundTest, BoxCoversAllAddedPoints) {
  Rng rng(5);
  QuadrantBound qb(0);
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.Uniform(0.1, 100.0), rng.Uniform(0.1, 100.0)};
    qb.Add(p);
    EXPECT_TRUE(qb.box().Contains(p));
  }
}

TEST(QuadrantBoundTest, AnglesBoundAllAddedPoints) {
  Rng rng(6);
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    QuadrantBound qb(quadrant);
    const QuadrantRange range = QuadrantAngles(quadrant);
    for (int i = 0; i < 100; ++i) {
      const double theta =
          rng.Uniform(range.start, range.end - 1e-9);
      qb.Add(PointAt(rng.Uniform(1.0, 50.0), theta));
      EXPECT_LE(qb.min_angle(), theta + 1e-12);
      EXPECT_GE(qb.max_angle(), theta - 1e-12);
      EXPECT_GE(qb.min_angle(), range.start - 1e-12);
      EXPECT_LT(qb.max_angle(), range.end + 1e-12);
    }
  }
}

TEST(QuadrantBoundTest, SignificantPointsLieOnTheBox) {
  Rng rng(7);
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    QuadrantBound qb(quadrant);
    const QuadrantRange range = QuadrantAngles(quadrant);
    for (int i = 0; i < 30; ++i) {
      qb.Add(PointAt(rng.Uniform(1.0, 80.0),
                     rng.Uniform(range.start, range.end - 1e-9)));
    }
    const auto sig = qb.Significant();
    const Box2& box = qb.box();
    const auto on_boundary = [&](Vec2 p) {
      const bool inside = box.Contains(p);
      const bool on_edge = ApproxEqual(p.x, box.min().x, 1e-6) ||
                           ApproxEqual(p.x, box.max().x, 1e-6) ||
                           ApproxEqual(p.y, box.min().y, 1e-6) ||
                           ApproxEqual(p.y, box.max().y, 1e-6);
      return inside && on_edge;
    };
    EXPECT_TRUE(on_boundary(sig.l1));
    EXPECT_TRUE(on_boundary(sig.l2));
    EXPECT_TRUE(on_boundary(sig.u1));
    EXPECT_TRUE(on_boundary(sig.u2));
    // Entry point is nearer the origin than the exit point.
    EXPECT_LE(sig.l1.NormSq(), sig.l2.NormSq() + 1e-9);
    EXPECT_LE(sig.u1.NormSq(), sig.u2.NormSq() + 1e-9);
    // Near/far corners really are the extreme corners.
    for (const Vec2& c : sig.corners) {
      EXPECT_LE(sig.near_corner.NormSq(), c.NormSq() + 1e-9);
      EXPECT_GE(sig.far_corner.NormSq(), c.NormSq() - 1e-9);
    }
  }
}

TEST(QuadrantBoundTest, SinglePointCollapsesEverything) {
  QuadrantBound qb(0);
  const Vec2 p{10.0, 20.0};
  qb.Add(p);
  const auto sig = qb.Significant();
  EXPECT_EQ(sig.near_corner, p);
  EXPECT_EQ(sig.far_corner, p);
  EXPECT_NEAR(Distance(sig.l1, p), 0.0, 1e-9);
  EXPECT_NEAR(Distance(sig.l2, p), 0.0, 1e-9);
  EXPECT_NEAR(Distance(sig.u1, p), 0.0, 1e-9);
  EXPECT_NEAR(Distance(sig.u2, p), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(qb.min_angle(), qb.max_angle());
}

TEST(QuadrantBoundTest, BoundingLinesPassThroughExtremeAnglePoints) {
  // The min-angle and max-angle points must lie on their bounding lines'
  // segments [entry, exit] (the ray passes through them).
  QuadrantBound qb(0);
  const Vec2 low = PointAt(50.0, 0.1);
  const Vec2 high = PointAt(30.0, 1.4);
  const Vec2 mid = PointAt(40.0, 0.7);
  qb.Add(low);
  qb.Add(high);
  qb.Add(mid);
  const auto sig = qb.Significant();
  // low sits on the lower bounding ray within the box.
  const double cross_l = (sig.l2 - sig.l1).Cross(low - sig.l1);
  EXPECT_NEAR(cross_l, 0.0, 1e-6);
  const double cross_u = (sig.u2 - sig.u1).Cross(high - sig.u1);
  EXPECT_NEAR(cross_u, 0.0, 1e-6);
}

TEST(QuadrantBoundTest, PointsOnAxesClassifyAndBound) {
  // Points exactly on the +x axis belong to quadrant 0 by convention and
  // give min_angle == 0.
  QuadrantBound qb(0);
  qb.Add({5.0, 0.0});
  qb.Add({3.0, 3.0});
  EXPECT_DOUBLE_EQ(qb.min_angle(), 0.0);
  EXPECT_NEAR(qb.max_angle(), kPi / 4.0, 1e-12);
}

}  // namespace
}  // namespace bqs
