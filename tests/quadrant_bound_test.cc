// Invariants of the per-quadrant bounding structure (paper Section V-B).
#include "core/quadrant_bound.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"
#include "geometry/angle.h"

namespace bqs {
namespace {

Vec2 PointAt(double r, double theta) {
  return {r * std::cos(theta), r * std::sin(theta)};
}

TEST(QuadrantBoundTest, StartsEmptyAndResets) {
  QuadrantBound qb(2);
  EXPECT_TRUE(qb.empty());
  EXPECT_EQ(qb.quadrant(), 2);
  qb.Add({-3.0, -4.0});
  EXPECT_FALSE(qb.empty());
  EXPECT_EQ(qb.count(), 1u);
  qb.Reset();
  EXPECT_TRUE(qb.empty());
  EXPECT_EQ(qb.quadrant(), 2);
}

TEST(QuadrantBoundTest, BoxCoversAllAddedPoints) {
  Rng rng(5);
  QuadrantBound qb(0);
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.Uniform(0.1, 100.0), rng.Uniform(0.1, 100.0)};
    qb.Add(p);
    EXPECT_TRUE(qb.box().Contains(p));
  }
}

TEST(QuadrantBoundTest, AnglesBoundAllAddedPoints) {
  Rng rng(6);
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    QuadrantBound qb(quadrant);
    const QuadrantRange range = QuadrantAngles(quadrant);
    for (int i = 0; i < 100; ++i) {
      const double theta =
          rng.Uniform(range.start, range.end - 1e-9);
      qb.Add(PointAt(rng.Uniform(1.0, 50.0), theta));
      EXPECT_LE(qb.min_angle(), theta + 1e-12);
      EXPECT_GE(qb.max_angle(), theta - 1e-12);
      EXPECT_GE(qb.min_angle(), range.start - 1e-12);
      EXPECT_LT(qb.max_angle(), range.end + 1e-12);
    }
  }
}

TEST(QuadrantBoundTest, SignificantPointsLieOnTheBox) {
  Rng rng(7);
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    QuadrantBound qb(quadrant);
    const QuadrantRange range = QuadrantAngles(quadrant);
    for (int i = 0; i < 30; ++i) {
      qb.Add(PointAt(rng.Uniform(1.0, 80.0),
                     rng.Uniform(range.start, range.end - 1e-9)));
    }
    const auto sig = qb.Significant();
    const Box2& box = qb.box();
    const auto on_boundary = [&](Vec2 p) {
      const bool inside = box.Contains(p);
      const bool on_edge = ApproxEqual(p.x, box.min().x, 1e-6) ||
                           ApproxEqual(p.x, box.max().x, 1e-6) ||
                           ApproxEqual(p.y, box.min().y, 1e-6) ||
                           ApproxEqual(p.y, box.max().y, 1e-6);
      return inside && on_edge;
    };
    EXPECT_TRUE(on_boundary(sig.l1));
    EXPECT_TRUE(on_boundary(sig.l2));
    EXPECT_TRUE(on_boundary(sig.u1));
    EXPECT_TRUE(on_boundary(sig.u2));
    // Entry point is nearer the origin than the exit point.
    EXPECT_LE(sig.l1.NormSq(), sig.l2.NormSq() + 1e-9);
    EXPECT_LE(sig.u1.NormSq(), sig.u2.NormSq() + 1e-9);
    // Near/far corners really are the extreme corners.
    for (const Vec2& c : sig.corners) {
      EXPECT_LE(sig.near_corner.NormSq(), c.NormSq() + 1e-9);
      EXPECT_GE(sig.far_corner.NormSq(), c.NormSq() - 1e-9);
    }
  }
}

TEST(QuadrantBoundTest, SinglePointCollapsesEverything) {
  QuadrantBound qb(0);
  const Vec2 p{10.0, 20.0};
  qb.Add(p);
  const auto sig = qb.Significant();
  EXPECT_EQ(sig.near_corner, p);
  EXPECT_EQ(sig.far_corner, p);
  EXPECT_NEAR(Distance(sig.l1, p), 0.0, 1e-9);
  EXPECT_NEAR(Distance(sig.l2, p), 0.0, 1e-9);
  EXPECT_NEAR(Distance(sig.u1, p), 0.0, 1e-9);
  EXPECT_NEAR(Distance(sig.u2, p), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(qb.min_angle(), qb.max_angle());
}

TEST(QuadrantBoundTest, BoundingLinesPassThroughExtremeAnglePoints) {
  // The min-angle and max-angle points must lie on their bounding lines'
  // segments [entry, exit] (the ray passes through them).
  QuadrantBound qb(0);
  const Vec2 low = PointAt(50.0, 0.1);
  const Vec2 high = PointAt(30.0, 1.4);
  const Vec2 mid = PointAt(40.0, 0.7);
  qb.Add(low);
  qb.Add(high);
  qb.Add(mid);
  const auto sig = qb.Significant();
  // low sits on the lower bounding ray within the box.
  const double cross_l = (sig.l2 - sig.l1).Cross(low - sig.l1);
  EXPECT_NEAR(cross_l, 0.0, 1e-6);
  const double cross_u = (sig.u2 - sig.u1).Cross(high - sig.u1);
  EXPECT_NEAR(cross_u, 0.0, 1e-6);
}

TEST(QuadrantBoundTest, PointsOnAxesClassifyAndBound) {
  // Points exactly on the +x axis belong to quadrant 0 by convention and
  // give min_angle == 0.
  QuadrantBound qb(0);
  qb.Add({5.0, 0.0});
  qb.Add({3.0, 3.0});
  EXPECT_DOUBLE_EQ(qb.min_angle(), 0.0);
  EXPECT_NEAR(qb.max_angle(), kPi / 4.0, 1e-12);
}

void ExpectSameSignificant(const QuadrantBound::SignificantPoints& a,
                           const QuadrantBound::SignificantPoints& b) {
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a.corners[static_cast<std::size_t>(i)] ==
                b.corners[static_cast<std::size_t>(i)]);
  }
  ASSERT_TRUE(a.l1 == b.l1);
  ASSERT_TRUE(a.l2 == b.l2);
  ASSERT_TRUE(a.u1 == b.u1);
  ASSERT_TRUE(a.u2 == b.u2);
  ASSERT_TRUE(a.near_corner == b.near_corner);
  ASSERT_TRUE(a.far_corner == b.far_corner);
  ASSERT_TRUE(a.min_angle_point == b.min_angle_point);
  ASSERT_TRUE(a.max_angle_point == b.max_angle_point);
}

TEST(QuadrantBoundTest, AddCrossSelectsTheSameExtremePointsAsAtan2) {
  // The cross-product kernel must pick bit-identical extreme points (and
  // therefore bit-identical significant points) to the atan2 kernel on
  // generic input: within a quadrant, angle order IS cross-product order.
  Rng rng(21);
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    for (int trial = 0; trial < 200; ++trial) {
      QuadrantBound via_atan2(quadrant);
      QuadrantBound via_cross(quadrant);
      const QuadrantRange range = QuadrantAngles(quadrant);
      const int n = 1 + trial % 24;
      for (int i = 0; i < n; ++i) {
        const Vec2 p = PointAt(rng.Uniform(0.5, 200.0),
                               rng.Uniform(range.start, range.end - 1e-9));
        via_atan2.Add(p);
        via_cross.AddCross(p);
      }
      ExpectSameSignificant(via_atan2.Significant(), via_cross.Significant());
      // The derived-on-demand angles agree with the tracked ones.
      EXPECT_DOUBLE_EQ(via_cross.min_angle(), via_atan2.min_angle());
      EXPECT_DOUBLE_EQ(via_cross.max_angle(), via_atan2.max_angle());
    }
  }
}

TEST(QuadrantBoundTest, AddCrossTiesKeepTheEarlierPoint) {
  // Collinear scalings of the same direction have cross == 0 and equal
  // atan2 angles: both kernels must keep the first-added point as the
  // extreme (strict comparisons).
  QuadrantBound via_atan2(0);
  QuadrantBound via_cross(0);
  for (const Vec2 p : {Vec2{3.0, 4.0}, Vec2{6.0, 8.0}, Vec2{1.5, 2.0}}) {
    via_atan2.Add(p);
    via_cross.AddCross(p);
  }
  ExpectSameSignificant(via_atan2.Significant(), via_cross.Significant());
  EXPECT_TRUE(via_cross.Significant().min_angle_point == (Vec2{3.0, 4.0}));
  EXPECT_TRUE(via_cross.Significant().max_angle_point == (Vec2{3.0, 4.0}));

  // Signed-zero axis points: (x, +0) and (x, -0) tie at angle 0.
  QuadrantBound axis_atan2(0);
  QuadrantBound axis_cross(0);
  for (const Vec2 p : {Vec2{5.0, 0.0}, Vec2{7.0, -0.0}, Vec2{2.0, 2.0}}) {
    axis_atan2.Add(p);
    axis_cross.AddCross(p);
  }
  ExpectSameSignificant(axis_atan2.Significant(), axis_cross.Significant());
}

TEST(QuadrantBoundTest, AddCrossEquivalenceOnNearlyCollinearSlivers) {
  // The stress case the wedge/extreme machinery exists for: a hair-thin
  // sliver of nearly collinear points (a straight GPS run after rotation).
  // Cross products of nearly parallel vectors are small but still well
  // above rounding error at these offsets, so both kernels must agree.
  Rng rng(22);
  for (int trial = 0; trial < 300; ++trial) {
    QuadrantBound via_atan2(0);
    QuadrantBound via_cross(0);
    const double base = rng.Uniform(0.05, kHalfPi - 0.05);
    for (int i = 0; i < 30; ++i) {
      const double r = rng.Uniform(10.0, 5000.0);
      const double jitter = rng.Uniform(-1e-9, 1e-9);
      const Vec2 p = PointAt(r, base + jitter);
      via_atan2.Add(p);
      via_cross.AddCross(p);
    }
    ExpectSameSignificant(via_atan2.Significant(), via_cross.Significant());
  }
}

TEST(QuadrantBoundTest, AddCrossTieBandMatchesAtan2OnUlpCloseDirections) {
  // Distinct directions inside the atan2 rounding quantum (~2e-16 rad):
  // the reference's strict theta compare may keep the earlier point even
  // though the true angular order differs; AddCross's tie band must
  // replicate the reference choice bit-for-bit, in either arrival order.
  const Vec2 p1{1e9, 1000000000.0};
  const Vec2 p2{1e9, 1000000000.0000001};  // ~7e-17 rad CCW of p1.
  for (const auto& [first, second] :
       {std::pair{p1, p2}, std::pair{p2, p1}}) {
    QuadrantBound via_atan2(0);
    QuadrantBound via_cross(0);
    via_atan2.Add(first);
    via_atan2.Add(second);
    via_cross.AddCross(first);
    const bool deferred = via_cross.AddCross(second);
    EXPECT_TRUE(deferred) << "ulp-close pair must hit the tie band";
    ExpectSameSignificant(via_atan2.Significant(), via_cross.Significant());
  }
  // Bitwise-identical duplicates are pure ties: no deferral, same choice.
  QuadrantBound dup_atan2(0);
  QuadrantBound dup_cross(0);
  dup_atan2.Add(p1);
  dup_atan2.Add(p1);
  dup_cross.AddCross(p1);
  EXPECT_FALSE(dup_cross.AddCross(p1));
  ExpectSameSignificant(dup_atan2.Significant(), dup_cross.Significant());
}

TEST(QuadrantBoundTest, SignificantCacheInvalidatesOnAdd) {
  Rng rng(23);
  QuadrantBound qb(0);
  qb.AddCross({10.0, 5.0});
  for (int i = 0; i < 50; ++i) {
    // Query (fills the cache), then add (invalidates), then re-query and
    // compare against an unconditional recompute, field for field.
    (void)qb.Significant();
    qb.AddCross({rng.Uniform(0.5, 400.0), rng.Uniform(0.5, 400.0)});
    ExpectSameSignificant(qb.Significant(), qb.ComputeSignificant());
  }
  // Reset() must drop the cache too.
  qb.Reset();
  qb.AddCross({1.0, 2.0});
  ExpectSameSignificant(qb.Significant(), qb.ComputeSignificant());
}

}  // namespace
}  // namespace bqs
