// Von Mises sampling: circular moments, concentration behaviour, pdf.
#include "simulation/von_mises.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "geometry/angle.h"

namespace bqs {
namespace {

struct CircularStats {
  double mean;
  double resultant;  // R in [0,1]; higher = more concentrated.
};

CircularStats Sample(double mu, double kappa, int n, uint64_t seed) {
  Rng rng(seed);
  double sx = 0.0;
  double sy = 0.0;
  for (int i = 0; i < n; ++i) {
    const double theta = SampleVonMises(rng, mu, kappa);
    EXPECT_GT(theta, -kPi - 1e-12);
    EXPECT_LE(theta, kPi + 1e-12);
    sx += std::cos(theta);
    sy += std::sin(theta);
  }
  CircularStats out;
  out.mean = std::atan2(sy, sx);
  out.resultant = std::hypot(sx, sy) / n;
  return out;
}

TEST(VonMisesTest, CircularMeanMatchesMu) {
  for (double mu : {0.0, 1.0, -2.5}) {
    const CircularStats s = Sample(mu, 4.0, 20000, 91);
    EXPECT_NEAR(NormalizeAngle(s.mean - mu), 0.0, 0.05);
  }
}

TEST(VonMisesTest, ConcentrationGrowsWithKappa) {
  const double r1 = Sample(0.0, 0.5, 20000, 92).resultant;
  const double r2 = Sample(0.0, 3.0, 20000, 93).resultant;
  const double r3 = Sample(0.0, 12.0, 20000, 94).resultant;
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  // Known mean resultant length: R = I1(k)/I0(k); spot check k = 3 -> .80.
  EXPECT_NEAR(r2, 0.801, 0.02);
}

TEST(VonMisesTest, ZeroKappaIsUniform) {
  const CircularStats s = Sample(1.0, 0.0, 20000, 95);
  EXPECT_NEAR(s.resultant, 0.0, 0.02);
}

TEST(VonMisesTest, PdfIntegratesToOne) {
  for (double kappa : {0.1, 1.0, 5.0, 20.0}) {
    double sum = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      const double theta = -kPi + kTwoPi * (i + 0.5) / n;
      sum += VonMisesPdf(theta, 0.7, kappa) * (kTwoPi / n);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << "kappa=" << kappa;
  }
}

TEST(VonMisesTest, PdfPeaksAtMu) {
  const double mu = 0.9;
  const double at_mu = VonMisesPdf(mu, mu, 4.0);
  for (double offset : {0.5, 1.0, 2.0}) {
    EXPECT_GT(at_mu, VonMisesPdf(mu + offset, mu, 4.0));
    EXPECT_GT(at_mu, VonMisesPdf(mu - offset, mu, 4.0));
  }
}

TEST(VonMisesTest, BesselI0KnownValues) {
  EXPECT_NEAR(BesselI0(0.0), 1.0, 1e-14);
  EXPECT_NEAR(BesselI0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(BesselI0(5.0), 27.239871823604442, 1e-9);
}

TEST(VonMisesTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(SampleVonMises(a, 0.3, 2.0),
                     SampleVonMises(b, 0.3, 2.0));
  }
}

}  // namespace
}  // namespace bqs
