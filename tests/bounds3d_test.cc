// Focused tests for the 3-D bound machinery (beyond the end-to-end checks
// in bqs3d_test): LineToRectDistance exactness incl. the parallel case,
// and mode-comparison properties of OctantDeviationBounds.
#include "core/bounds3d.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/line3.h"

namespace bqs {
namespace {

TEST(LineToRectDistanceTest, PierceIsZero) {
  const std::array<Vec3, 4> rect{Vec3{-5, -5, 0}, Vec3{5, -5, 0},
                                 Vec3{5, 5, 0}, Vec3{-5, 5, 0}};
  // Vertical line through the interior.
  EXPECT_DOUBLE_EQ(
      LineToRectDistance({1, 1, -10}, {1, 1, 10}, rect), 0.0);
  // Oblique transversal.
  EXPECT_DOUBLE_EQ(
      LineToRectDistance({-10, -10, -10}, {10, 10, 10}, rect), 0.0);
}

TEST(LineToRectDistanceTest, ParallelOverInterior) {
  const std::array<Vec3, 4> rect{Vec3{-5, -5, 0}, Vec3{5, -5, 0},
                                 Vec3{5, 5, 0}, Vec3{-5, 5, 0}};
  // Line parallel to the plane, projecting across the rectangle: the
  // distance is the plane offset, attained over the interior.
  EXPECT_NEAR(LineToRectDistance({-10, 0, 3}, {10, 0, 3}, rect), 3.0,
              1e-12);
  // Parallel but projecting outside the rectangle: nearest edge governs.
  EXPECT_NEAR(LineToRectDistance({-10, 9, 3}, {10, 9, 3}, rect), 5.0,
              1e-12);
}

TEST(LineToRectDistanceTest, TransversalMissingRect) {
  const std::array<Vec3, 4> rect{Vec3{0, 0, 0}, Vec3{4, 0, 0},
                                 Vec3{4, 4, 0}, Vec3{0, 4, 0}};
  // Vertical line far outside: distance to the nearest corner.
  EXPECT_NEAR(LineToRectDistance({10, 0, -5}, {10, 0, 5}, rect), 6.0,
              1e-12);
}

TEST(LineToRectDistanceTest, DegenerateRectFallsBackToEdges) {
  // A zero-area "rectangle" (all corners collinear).
  const std::array<Vec3, 4> rect{Vec3{0, 0, 0}, Vec3{4, 0, 0},
                                 Vec3{4, 0, 0}, Vec3{0, 0, 0}};
  EXPECT_NEAR(LineToRectDistance({0, 3, 0}, {4, 3, 0}, rect), 3.0, 1e-12);
}

TEST(LineToRectDistanceTest, MatchesDenseSampling) {
  Rng rng(77);
  for (int iter = 0; iter < 300; ++iter) {
    const Vec3 origin{rng.Uniform(-20, 20), rng.Uniform(-20, 20),
                      rng.Uniform(-20, 20)};
    const Vec3 e0{rng.Uniform(1, 25), 0, 0};
    const Vec3 e1{0, rng.Uniform(1, 25), 0};
    const std::array<Vec3, 4> rect{origin, origin + e0, origin + e0 + e1,
                                   origin + e1};
    const Vec3 a{rng.Uniform(-40, 40), rng.Uniform(-40, 40),
                 rng.Uniform(-40, 40)};
    // Mix of generic and parallel-to-plane lines.
    const Vec3 b = iter % 3 == 0
                       ? a + Vec3{rng.Uniform(-30, 30),
                                  rng.Uniform(-30, 30), 0.0}
                       : Vec3{rng.Uniform(-40, 40), rng.Uniform(-40, 40),
                              rng.Uniform(-40, 40)};
    if (Distance(a, b) < 1e-6) continue;
    const double computed = LineToRectDistance(a, b, rect);
    double sampled = 1e100;
    for (int i = 0; i <= 40; ++i) {
      for (int j = 0; j <= 40; ++j) {
        const Vec3 p = origin + e0 * (i / 40.0) + e1 * (j / 40.0);
        sampled = std::min(sampled, PointToLineDistance3(p, a, b));
      }
    }
    EXPECT_LE(computed, sampled + 1e-6);
    EXPECT_GE(computed, sampled - 1.5);  // grid resolution slack
  }
}

TEST(OctantBoundsTest, ClippedHullNeverLooserThanPaper17OnUpper) {
  // The paper-17 point set spans a polyhedron containing the clipped hull,
  // so its upper bound must dominate (both are sound; clipped is tighter).
  Rng rng(78);
  int compared = 0;
  for (int iter = 0; iter < 400; ++iter) {
    OctantBound ob(static_cast<int>(rng.UniformInt(0, 7)));
    const int n = static_cast<int>(rng.UniformInt(2, 20));
    for (int i = 0; i < n; ++i) {
      Vec3 p{rng.Uniform(0.2, 80), rng.Uniform(0.2, 80),
             rng.Uniform(0.2, 80)};
      if (ob.octant() & 1) p.x = -p.x;
      if (ob.octant() & 2) p.y = -p.y;
      if (ob.octant() & 4) p.z = -p.z;
      ob.Add(p);
    }
    const Vec3 end{rng.Uniform(-120, 120), rng.Uniform(-120, 120),
                   rng.Uniform(-120, 120)};
    if (end == Vec3{}) continue;
    const DeviationBounds hull = OctantDeviationBounds(
        ob, end, DistanceMetric::kPointToLine, Bounds3dMode::kClippedHull);
    const DeviationBounds paper =
        OctantDeviationBounds(ob, end, DistanceMetric::kPointToLine,
                              Bounds3dMode::kPaperSignificant);
    ++compared;
    EXPECT_LE(hull.upper, paper.upper + 1e-6 * (1.0 + paper.upper));
  }
  EXPECT_GT(compared, 300);
}

TEST(OctantBoundsTest, SegmentMetricBoundsSandwich) {
  Rng rng(79);
  for (int iter = 0; iter < 400; ++iter) {
    OctantBound ob(0);
    std::vector<Vec3> points;
    const int n = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < n; ++i) {
      const Vec3 p{rng.Uniform(0.2, 90), rng.Uniform(0.2, 90),
                   rng.Uniform(0.2, 90)};
      ob.Add(p);
      points.push_back(p);
    }
    const Vec3 end{rng.Uniform(-120, 120), rng.Uniform(-120, 120),
                   rng.Uniform(-120, 120)};
    double exact = 0.0;
    for (const Vec3& p : points) {
      exact = std::max(exact, PointToSegmentDistance3(p, Vec3{}, end));
    }
    const DeviationBounds bounds =
        OctantDeviationBounds(ob, end, DistanceMetric::kPointToSegment,
                              Bounds3dMode::kClippedHull);
    const double tol = 1e-6 * (1.0 + exact);
    EXPECT_LE(bounds.lower, exact + tol);
    EXPECT_GE(bounds.upper, exact - tol);
  }
}

}  // namespace
}  // namespace bqs
