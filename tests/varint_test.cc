// LEB128 varint + zigzag: round trips, encoding lengths, and the hardened
// decode path (truncation, overlong encodings, overflow bits) the WAL
// recovery fuzzer leans on.
#include "common/varint.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace bqs {
namespace {

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(VarintTest, UnsignedRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             (uint64_t{1} << 35) - 1,
                             uint64_t{1} << 35,
                             std::numeric_limits<uint64_t>::max() - 1,
                             std::numeric_limits<uint64_t>::max()};
  for (const uint64_t v : values) {
    std::string buf;
    varint::PutU64(&buf, v);
    ASSERT_LE(buf.size(), varint::kMaxBytes);
    const uint8_t* p = Bytes(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(varint::GetU64(&p, Bytes(buf) + buf.size(), &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(p, Bytes(buf) + buf.size()) << "decode must consume exactly";
  }
}

TEST(VarintTest, SignedRoundTripThroughZigZag) {
  const int64_t values[] = {0,
                            -1,
                            1,
                            -64,
                            64,
                            -12345678,
                            12345678,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (const int64_t v : values) {
    std::string buf;
    varint::PutI64(&buf, v);
    const uint8_t* p = Bytes(buf);
    int64_t decoded = 0;
    ASSERT_TRUE(varint::GetI64(&p, Bytes(buf) + buf.size(), &decoded)) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, ZigZagKeepsSmallMagnitudesShort) {
  // The property the WAL's delta coding buys its density from.
  for (const int64_t v : {-63, -1, 0, 1, 63}) {
    std::string buf;
    varint::PutI64(&buf, v);
    EXPECT_EQ(buf.size(), 1u) << v;
  }
  EXPECT_EQ(varint::ZigZagEncode(0), 0u);
  EXPECT_EQ(varint::ZigZagEncode(-1), 1u);
  EXPECT_EQ(varint::ZigZagEncode(1), 2u);
  EXPECT_EQ(varint::ZigZagEncode(-2), 3u);
}

TEST(VarintTest, EncodingLengths) {
  const struct {
    uint64_t value;
    std::size_t bytes;
  } cases[] = {{0, 1},           {127, 1},
               {128, 2},         {16383, 2},
               {16384, 3},       {(uint64_t{1} << 63) - 1, 9},
               {uint64_t{1} << 63, 10}};
  for (const auto& c : cases) {
    std::string buf;
    varint::PutU64(&buf, c.value);
    EXPECT_EQ(buf.size(), c.bytes) << c.value;
  }
}

TEST(VarintTest, TruncatedInputFailsAndLeavesPosUnchanged) {
  std::string buf;
  varint::PutU64(&buf, uint64_t{1} << 40);  // multi-byte encoding
  for (std::size_t keep = 0; keep < buf.size(); ++keep) {
    const uint8_t* p = Bytes(buf);
    uint64_t v = 0;
    EXPECT_FALSE(varint::GetU64(&p, Bytes(buf) + keep, &v)) << keep;
    EXPECT_EQ(p, Bytes(buf)) << "failed decode must not advance";
  }
}

TEST(VarintTest, RejectsOverlongAndOverflowingEncodings) {
  // 11 continuation bytes: longer than any valid uint64 encoding.
  std::string overlong(11, static_cast<char>(0x80));
  overlong.push_back(0x01);
  const uint8_t* p = Bytes(overlong);
  uint64_t v = 0;
  EXPECT_FALSE(varint::GetU64(&p, Bytes(overlong) + overlong.size(), &v));

  // 10 bytes whose final byte carries bits beyond the 64th.
  std::string overflow(9, static_cast<char>(0x80));
  overflow.push_back(0x02);  // would set bit 64
  p = Bytes(overflow);
  EXPECT_FALSE(varint::GetU64(&p, Bytes(overflow) + overflow.size(), &v));

  // The canonical max encoding is still accepted.
  std::string max_enc(9, static_cast<char>(0xff));
  max_enc.push_back(0x01);
  p = Bytes(max_enc);
  ASSERT_TRUE(varint::GetU64(&p, Bytes(max_enc) + max_enc.size(), &v));
  EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
}

TEST(VarintTest, DecodesConsecutiveValuesFromOneBuffer) {
  std::string buf;
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 100; ++i) {
    values.push_back(i * i * 37 + i);
    varint::PutU64(&buf, values.back());
  }
  const uint8_t* p = Bytes(buf);
  const uint8_t* end = Bytes(buf) + buf.size();
  for (const uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(varint::GetU64(&p, end, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(p, end);
}

}  // namespace
}  // namespace bqs
