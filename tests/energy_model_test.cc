// Energy model extending the Table II storage arithmetic.
#include "storage/energy_model.h"

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(EnergyModelTest, DailySpendDecomposition) {
  const EnergyModel model;
  const PlatformSpec spec;
  // 1440 fixes/day at the defaults.
  const double none = DailyEnergyJoules(model, spec, 0.0);
  const double raw = DailyEnergyJoules(model, spec, 1.0);
  EXPECT_GT(none, model.idle_j_per_day);
  EXPECT_GT(raw, none);  // stored+offloaded bytes cost energy
  // GPS dominates: fixes * per-fix joules.
  EXPECT_GT(none, 1440.0 * model.gps_fix_j);
}

TEST(EnergyModelTest, CompressionExtendsEnergyLife) {
  EnergyModel model;
  model.solar_j_per_day = 0.0;  // panel-less tag: battery is binding
  const PlatformSpec spec;
  const double compressed = EstimateEnergyLimitedDays(model, spec, 0.05);
  const double raw = EstimateEnergyLimitedDays(model, spec, 1.0);
  EXPECT_GT(compressed, raw);
}

TEST(EnergyModelTest, SolarCanSustainIndefinitely) {
  EnergyModel model;
  const PlatformSpec spec;
  model.solar_j_per_day = 1.0e6;
  EXPECT_GT(EstimateEnergyLimitedDays(model, spec, 1.0), 1.0e8);
}

TEST(EnergyModelTest, SolarDefaultMakesStorageBinding) {
  // With the default panel, the combined estimate equals the paper's
  // storage-limited Table II numbers.
  const EnergyModel model;
  const PlatformSpec spec;
  EXPECT_DOUBLE_EQ(EstimateCombinedDays(model, spec, 0.05),
                   EstimateOperationalDays(spec, 0.05));
}

TEST(EnergyModelTest, CombinedTakesTheBindingConstraint) {
  EnergyModel model;
  model.solar_j_per_day = 0.0;
  const PlatformSpec spec;
  const double combined = EstimateCombinedDays(model, spec, 0.05);
  EXPECT_LE(combined, EstimateOperationalDays(spec, 0.05) + 1e-9);
  EXPECT_LE(combined, EstimateEnergyLimitedDays(model, spec, 0.05) + 1e-9);
  EXPECT_TRUE(combined == EstimateOperationalDays(spec, 0.05) ||
              combined == EstimateEnergyLimitedDays(model, spec, 0.05));
}

TEST(EnergyModelTest, GpsCostUnaffectedByCompression) {
  // Compression cannot reduce the acquisition cost of fixes, only the
  // storage/offload bytes — the model must reflect that.
  const EnergyModel model;
  const PlatformSpec spec;
  const double low = DailyEnergyJoules(model, spec, 0.01);
  const double high = DailyEnergyJoules(model, spec, 1.0);
  const double fixes_cost =
      86400.0 / spec.sample_interval_s *
      (model.gps_fix_j + model.cpu_j_per_point);
  EXPECT_GT(low, fixes_cost);
  // The spread between 1% and 100% compression is only the byte costs.
  const double byte_cost = 86400.0 / spec.sample_interval_s *
                           spec.bytes_per_sample * 0.99 *
                           (model.flash_j_per_byte + model.radio_j_per_byte);
  EXPECT_NEAR(high - low, byte_cost, 1e-9);
}

}  // namespace
}  // namespace bqs
