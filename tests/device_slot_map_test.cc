// DeviceSlotMap: the epoch-versioned open-addressing device->group-slot
// table the grouped router runs on. Lookup/Bind round trips, O(1) window
// invalidation, collision survival across growth, and entry reuse.
#include "service/device_slot_map.h"

#include <vector>

#include "gtest/gtest.h"

namespace bqs {
namespace {

TEST(DeviceSlotMapTest, LookupMissesUntilBound) {
  DeviceSlotMap map;
  EXPECT_EQ(map.Lookup(42), DeviceSlotMap::kAbsent);
  map.Bind(42, 7);
  EXPECT_EQ(map.Lookup(42), 7u);
  EXPECT_EQ(map.Lookup(43), DeviceSlotMap::kAbsent);
  EXPECT_EQ(map.devices_seen(), 1u);
}

TEST(DeviceSlotMapTest, NewWindowInvalidatesAllBindingsInO1) {
  DeviceSlotMap map;
  for (DeviceId d = 0; d < 50; ++d) map.Bind(d, static_cast<uint32_t>(d));
  for (DeviceId d = 0; d < 50; ++d) {
    ASSERT_EQ(map.Lookup(d), static_cast<uint32_t>(d));
  }
  map.NewWindow();
  for (DeviceId d = 0; d < 50; ++d) {
    EXPECT_EQ(map.Lookup(d), DeviceSlotMap::kAbsent) << d;
  }
  // Entries persist: rebinding a known device is a restamp, not an insert.
  map.Bind(13, 99);
  EXPECT_EQ(map.Lookup(13), 99u);
  EXPECT_EQ(map.devices_seen(), 50u);
}

TEST(DeviceSlotMapTest, RebindInSameWindowOverwrites) {
  DeviceSlotMap map;
  map.Bind(5, 1);
  map.Bind(5, 2);
  EXPECT_EQ(map.Lookup(5), 2u);
  EXPECT_EQ(map.devices_seen(), 1u);
}

TEST(DeviceSlotMapTest, SurvivesGrowthWithSparseAdversarialIds) {
  // Far past the initial capacity, with ids shaped like real fleets
  // (sparse, strided) — every binding must survive the rehash chain.
  DeviceSlotMap map(16);
  std::vector<DeviceId> ids;
  for (uint32_t i = 0; i < 3000; ++i) {
    ids.push_back(1000 + 7919ULL * i);
  }
  for (uint32_t i = 0; i < ids.size(); ++i) map.Bind(ids[i], i);
  EXPECT_GE(map.table_capacity(), 3000u);
  for (uint32_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(map.Lookup(ids[i]), i) << "id " << ids[i];
  }
  EXPECT_EQ(map.devices_seen(), ids.size());

  // Windows keep working after growth.
  map.NewWindow();
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(map.Lookup(ids[i]), DeviceSlotMap::kAbsent);
  }
  map.Bind(ids[0], 12345);
  EXPECT_EQ(map.Lookup(ids[0]), 12345u);
}

TEST(DeviceSlotMapTest, ManyWindowsNeverConfuseBindings) {
  DeviceSlotMap map;
  for (uint32_t window = 0; window < 500; ++window) {
    // Each window binds a rotating subset; stale bindings must not leak.
    const DeviceId a = window % 7;
    const DeviceId b = 7 + window % 5;
    map.Bind(a, window);
    map.Bind(b, window + 1000);
    EXPECT_EQ(map.Lookup(a), window);
    EXPECT_EQ(map.Lookup(b), window + 1000);
    EXPECT_EQ(map.Lookup(100 + window), DeviceSlotMap::kAbsent);
    map.NewWindow();
    EXPECT_EQ(map.Lookup(a), DeviceSlotMap::kAbsent);
    EXPECT_EQ(map.Lookup(b), DeviceSlotMap::kAbsent);
  }
  EXPECT_EQ(map.devices_seen(), 12u);  // 7 + 5 distinct ids ever
}

}  // namespace
}  // namespace bqs
