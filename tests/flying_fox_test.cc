// Flying-fox behavioural model: the statistics the compression evaluation
// relies on (camp stays, ~10 km trips, bounded speeds).
#include "simulation/flying_fox.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geo/geodesy.h"

namespace bqs {
namespace {

FlyingFoxOptions SmallOptions() {
  FlyingFoxOptions options;
  options.num_nights = 3;
  options.seed = 77;
  return options;
}

TEST(FlyingFoxTest, ProducesMonotonicTimestamps) {
  const GeoTrace trace = GenerateFlyingFoxTrace(SmallOptions());
  ASSERT_GT(trace.size(), 500u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].t, trace[i - 1].t);
  }
}

TEST(FlyingFoxTest, StaysWithinForageRadius) {
  const FlyingFoxOptions options = SmallOptions();
  const GeoTrace trace = GenerateFlyingFoxTrace(options);
  const LatLon camp{options.camp_lat, options.camp_lon};
  for (const GeoSample& s : trace) {
    EXPECT_LT(HaversineMeters(camp, s.pos),
              options.forage_radius_m * 1.3 + 500.0);
  }
}

TEST(FlyingFoxTest, FlightSpeedsBounded) {
  const FlyingFoxOptions options = SmallOptions();
  const GeoTrace trace = GenerateFlyingFoxTrace(options);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace[i].t - trace[i - 1].t;
    if (dt <= 0.0 || dt > options.sample_interval_s * 1.5) continue;
    const double speed =
        HaversineMeters(trace[i - 1].pos, trace[i].pos) / dt;
    // Max speed plus GPS noise slack.
    EXPECT_LT(speed, options.max_speed_mps + 2.0);
  }
}

TEST(FlyingFoxTest, HasBothRoostingAndFlight) {
  const FlyingFoxOptions options = SmallOptions();
  const GeoTrace trace = GenerateFlyingFoxTrace(options);
  std::size_t slow = 0;
  std::size_t fast = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace[i].t - trace[i - 1].t;
    if (dt <= 0.0) continue;
    const double speed =
        HaversineMeters(trace[i - 1].pos, trace[i].pos) / dt;
    if (speed < 1.0) ++slow;
    if (speed > 5.0) ++fast;
  }
  EXPECT_GT(slow, trace.size() / 10) << "roosting must dominate daytime";
  EXPECT_GT(fast, 50u) << "nightly flights must exist";
}

TEST(FlyingFoxTest, ReturnsToCampByDay) {
  const FlyingFoxOptions options = SmallOptions();
  const GeoTrace trace = GenerateFlyingFoxTrace(options);
  const LatLon camp{options.camp_lat, options.camp_lon};
  // Mid-day samples (roosting) are near the camp.
  std::size_t checked = 0;
  for (const GeoSample& s : trace) {
    const double day_phase = std::fmod(s.t, 86400.0);
    if (day_phase > options.night_hours * 3600.0 + 7200.0 &&
        day_phase < 82800.0) {
      EXPECT_LT(HaversineMeters(camp, s.pos), 400.0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(FlyingFoxTest, DeterministicPerSeed) {
  const GeoTrace a = GenerateFlyingFoxTrace(SmallOptions());
  const GeoTrace b = GenerateFlyingFoxTrace(SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[100], b[100]);
}

}  // namespace
}  // namespace bqs
