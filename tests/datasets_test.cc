// Canned dataset builders used by every bench.
#include "simulation/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

namespace bqs {
namespace {

TEST(DatasetsTest, BatDatasetShape) {
  const Dataset d = BuildBatDataset(0.2);
  EXPECT_EQ(d.name, "bat");
  EXPECT_GT(d.stream.size(), 1000u);
  for (std::size_t i = 1; i < d.stream.size(); ++i) {
    EXPECT_GT(d.stream[i].t, d.stream[i - 1].t);
  }
}

TEST(DatasetsTest, VehicleDatasetShape) {
  const Dataset d = BuildVehicleDataset(0.2);
  EXPECT_EQ(d.name, "vehicle");
  EXPECT_GT(d.stream.size(), 500u);
}

TEST(DatasetsTest, SyntheticMatchesPaperSizeAtScaleOne) {
  const Dataset d = BuildSyntheticDataset(1.0);
  EXPECT_EQ(d.name, "synthetic");
  EXPECT_EQ(d.stream.size(), 30000u);  // paper Section VI-A
}

TEST(DatasetsTest, ScaleShrinksWorkload) {
  const Dataset small = BuildSyntheticDataset(0.1);
  const Dataset large = BuildSyntheticDataset(0.5);
  EXPECT_LT(small.stream.size(), large.stream.size());
}

TEST(DatasetsTest, EmpiricalMergedCombinesBoth) {
  // The merged builder derives its component seeds from its own seed.
  const uint64_t seed = 3003;
  const Dataset bat = BuildBatDataset(0.1, seed);
  const Dataset vehicle = BuildVehicleDataset(0.1, seed + 1);
  const Dataset merged = BuildEmpiricalMergedDataset(0.1, seed);
  EXPECT_EQ(merged.stream.size(),
            bat.stream.size() + vehicle.stream.size());
}

TEST(DatasetsTest, AllDatasetsDistinctAndDeterministic) {
  const auto all = BuildAllDatasets(0.1);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "bat");
  EXPECT_EQ(all[1].name, "vehicle");
  EXPECT_EQ(all[2].name, "synthetic");
  const auto again = BuildAllDatasets(0.1);
  for (std::size_t d = 0; d < all.size(); ++d) {
    ASSERT_EQ(all[d].stream.size(), again[d].stream.size());
    EXPECT_EQ(all[d].stream[10], again[d].stream[10]);
  }
}

TEST(DatasetsTest, AdversarialDriftIsDeterministicAndScaled) {
  const Dataset d = BuildAdversarialDriftDataset(0.1);
  EXPECT_EQ(d.name, "adversarial_drift");
  EXPECT_EQ(d.stream.size(), 4000u);
  const Dataset again = BuildAdversarialDriftDataset(0.1);
  ASSERT_EQ(again.stream.size(), d.stream.size());
  EXPECT_EQ(d.stream[123], again.stream[123]);
  // The lateral excursion must hover under the hinted tolerance: large
  // enough to keep the bounds inconclusive, small enough to keep including.
  double max_abs_y = 0.0;
  for (const TrackPoint& p : d.stream) {
    max_abs_y = std::max(max_abs_y, std::fabs(p.pos.y));
  }
  EXPECT_GT(max_abs_y, 5.0);
  EXPECT_LT(max_abs_y, 12.0);
  // Tiny inputs still produce a workable stream.
  EXPECT_GE(BuildAdversarialDriftDataset(0.0001).stream.size(), 2000u);
}

TEST(DatasetsTest, FleetFeedInterleavesEveryDeviceStreamInOrder) {
  const FleetDataset fleet = BuildFleetDataset(7, 0.02, 4242);
  EXPECT_EQ(fleet.name, "fleet");
  ASSERT_EQ(fleet.devices.size(), 7u);

  // Device ids are unique and every stream is non-trivial.
  std::map<DeviceId, std::size_t> sizes;
  std::size_t total = 0;
  for (const auto& [device, stream] : fleet.devices) {
    EXPECT_TRUE(sizes.emplace(device, stream.size()).second)
        << "duplicate device id " << device;
    EXPECT_GE(stream.size(), 200u);
    total += stream.size();
  }
  EXPECT_EQ(fleet.feed.size(), total);

  // The feed restricted to one device must equal that device's reference
  // stream, record for record (per-device order is the fleet contract).
  std::map<DeviceId, std::size_t> cursor;
  for (const FleetRecord& record : fleet.feed) {
    auto it = sizes.find(record.device);
    ASSERT_NE(it, sizes.end()) << "feed contains unknown device";
    const std::size_t at = cursor[record.device]++;
    const auto& [device, stream] =
        *std::find_if(fleet.devices.begin(), fleet.devices.end(),
                      [&](const auto& d) { return d.first == record.device; });
    (void)device;
    ASSERT_LT(at, stream.size());
    EXPECT_EQ(record.point, stream[at]);
  }
  for (const auto& [device, n] : cursor) EXPECT_EQ(n, sizes.at(device));

  // The weave actually interleaves (the feed is not device-concatenated).
  std::size_t device_switches = 0;
  for (std::size_t i = 1; i < fleet.feed.size(); ++i) {
    if (fleet.feed[i].device != fleet.feed[i - 1].device) ++device_switches;
  }
  EXPECT_GT(device_switches, fleet.devices.size() * 4);
}

TEST(DatasetsTest, FleetFeedIsDeterministic) {
  const FleetDataset a = BuildFleetDataset(4, 0.02, 555);
  const FleetDataset b = BuildFleetDataset(4, 0.02, 555);
  ASSERT_EQ(a.feed.size(), b.feed.size());
  EXPECT_EQ(a.feed[0], b.feed[0]);
  EXPECT_EQ(a.feed[a.feed.size() / 2], b.feed[b.feed.size() / 2]);
  EXPECT_EQ(a.feed.back(), b.feed.back());
  const FleetDataset c = BuildFleetDataset(4, 0.02, 556);
  EXPECT_NE(c.feed, a.feed);
}

TEST(DatasetsTest, VelocitiesArePopulated) {
  const Dataset d = BuildSyntheticDataset(0.05);
  bool any_moving = false;
  for (const TrackPoint& p : d.stream) {
    if (p.velocity.Norm() > 0.0) any_moving = true;
  }
  EXPECT_TRUE(any_moving);
}

}  // namespace
}  // namespace bqs
