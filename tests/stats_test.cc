// RunningStats (Welford), percentiles, histogram.
#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(17);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    whole.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.Add(5.0);
  RunningStats b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 1);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.Add(offset + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.99), 7.0);
}

TEST(HistogramTest, BinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 4
  h.Add(-3.0);  // clamps to bin 0
  h.Add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_EQ(h.bin_count(2), 0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
}

TEST(HistogramTest, CdfIsMonotone) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) h.Add(rng.Uniform(0.0, 1.0));
  double prev = 0.0;
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    const double c = h.CdfAt(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.CdfAt(1.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace bqs
