// SQUISH-E: SED helper, ratio mode, error mode.
#include "baselines/squish_e.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace bqs {
namespace {

using testing_util::JaggedWalk;
using testing_util::NoisyLine;

double MaxSedError(const Trajectory& original,
                   const CompressedTrajectory& compressed) {
  double worst = 0.0;
  std::size_t seg = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    while (seg + 1 < compressed.size() &&
           compressed.keys[seg + 1].index < i) {
      ++seg;
    }
    const TrackPoint& a = compressed.keys[seg].point;
    const TrackPoint& b = compressed.keys[seg + 1].point;
    worst = std::max(worst,
                     SynchronizedEuclideanDistance(original[i], a, b));
  }
  return worst;
}

TEST(SquishETest, SedBasics) {
  const TrackPoint a{{0, 0}, 0.0, {}};
  const TrackPoint b{{10, 0}, 10.0, {}};
  // On time and on path: zero.
  EXPECT_DOUBLE_EQ(
      SynchronizedEuclideanDistance({{5, 0}, 5.0, {}}, a, b), 0.0);
  // On path but late: synchronized point is ahead.
  EXPECT_DOUBLE_EQ(
      SynchronizedEuclideanDistance({{5, 0}, 7.0, {}}, a, b), 2.0);
  // Off-path.
  EXPECT_DOUBLE_EQ(
      SynchronizedEuclideanDistance({{5, 3}, 5.0, {}}, a, b), 3.0);
  // Degenerate time range clamps.
  EXPECT_DOUBLE_EQ(
      SynchronizedEuclideanDistance({{3, 4}, 5.0, {}}, a,
                                    TrackPoint{{0, 0}, 0.0, {}}),
      5.0);
}

TEST(SquishETest, LambdaModeHitsTargetRatio) {
  const Trajectory walk = JaggedWalk(1, 3000);
  SquishEOptions options;
  options.lambda = 10.0;  // keep ~10%
  SquishE squish(options);
  const CompressedTrajectory c = squish.Compress(walk);
  EXPECT_LE(c.size(), walk.size() / 10 + 2);
  EXPECT_GE(c.size(), 4u);
}

TEST(SquishETest, EpsilonModeBoundsSed) {
  // The priority of a removed point upper-bounds its SED error (SQUISH-E
  // invariant), so compressing with epsilon keeps SED error <= epsilon.
  for (uint64_t seed : {2u, 3u}) {
    const Trajectory walk = JaggedWalk(seed, 1500);
    SquishEOptions options;
    options.epsilon = 15.0;
    SquishE squish(options);
    const CompressedTrajectory c = squish.Compress(walk);
    ASSERT_GE(c.size(), 2u);
    EXPECT_LE(MaxSedError(walk, c), 15.0 * (1.0 + 1e-9));
  }
}

TEST(SquishETest, EpsilonModeCompressesStraightLine) {
  const Trajectory walk = NoisyLine(4, 300, 0.5);
  SquishEOptions options;
  options.epsilon = 5.0;
  SquishE squish(options);
  const CompressedTrajectory c = squish.Compress(walk);
  EXPECT_LE(c.size(), 4u);
}

TEST(SquishETest, KeepsEndpoints) {
  const Trajectory walk = JaggedWalk(5, 500);
  SquishEOptions options;
  options.lambda = 20.0;
  options.epsilon = 10.0;
  SquishE squish(options);
  const CompressedTrajectory c = squish.Compress(walk);
  ASSERT_GE(c.size(), 2u);
  EXPECT_EQ(c.keys.front().index, 0u);
  EXPECT_EQ(c.keys.back().index, walk.size() - 1);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c.keys[i - 1].index, c.keys[i].index);
  }
}

TEST(SquishETest, EmptyAndTinyInputs) {
  SquishE squish(SquishEOptions{.lambda = 5.0});
  EXPECT_TRUE(squish.Compress({}).empty());
  Trajectory two{TrackPoint{{0, 0}, 0, {}}, TrackPoint{{1, 1}, 1, {}}};
  EXPECT_EQ(squish.Compress(two).size(), 2u);
}

TEST(SquishETest, TighterLambdaKeepsFewerPoints) {
  const Trajectory walk = JaggedWalk(6, 2000);
  std::size_t prev = SIZE_MAX;
  for (double lambda : {4.0, 10.0, 40.0}) {
    SquishEOptions options;
    options.lambda = lambda;
    SquishE squish(options);
    const std::size_t n = squish.Compress(walk).size();
    EXPECT_LE(n, prev);
    prev = n;
  }
}

}  // namespace
}  // namespace bqs
