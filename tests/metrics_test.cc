// Evaluation metric helpers.
#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "core/fbqs_compressor.h"
#include "test_util.h"

namespace bqs {
namespace {

TEST(MetricsTest, CompressionRate) {
  EXPECT_DOUBLE_EQ(CompressionRate(5, 100), 0.05);
  EXPECT_DOUBLE_EQ(CompressionRate(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(CompressionRate(5, 0), 0.0);
}

TEST(MetricsTest, PruningPowerFromStats) {
  DecisionStats stats;
  stats.points = 100;
  stats.exact_computations = 8;
  EXPECT_DOUBLE_EQ(PruningPower(stats), 0.92);
  stats.warmup_checks = 12;
  EXPECT_DOUBLE_EQ(stats.PruningPowerInclWarmup(), 0.80);
  EXPECT_DOUBLE_EQ(PruningPower(DecisionStats{}), 1.0);
}

TEST(MetricsTest, BoundDecisiveness) {
  DecisionStats stats;
  EXPECT_DOUBLE_EQ(stats.BoundDecisiveness(), 1.0);
  stats.upper_bound_includes = 90;
  stats.lower_bound_splits = 5;
  stats.exact_computations = 5;
  EXPECT_DOUBLE_EQ(stats.BoundDecisiveness(), 0.95);
}

TEST(MetricsTest, MeasureQualityEndToEnd) {
  const Trajectory walk = testing_util::SmoothWalk(3, 2000);
  FbqsCompressor fbqs(BqsOptions{.epsilon = 10.0});
  const CompressedTrajectory c = CompressAll(fbqs, walk);
  const CompressionQuality q =
      MeasureQuality(walk, c, 10.0, DistanceMetric::kPointToLine);
  EXPECT_EQ(q.points_in, walk.size());
  EXPECT_EQ(q.points_out, c.size());
  EXPECT_GT(q.compression_rate, 0.0);
  EXPECT_LT(q.compression_rate, 1.0);
  EXPECT_TRUE(q.error_bounded);
  EXPECT_LE(q.max_deviation, 10.0 * (1.0 + 1e-9));
}

}  // namespace
}  // namespace bqs
