// Vec2 / Vec3 arithmetic and geometry helpers.
#include "geometry/vec2.h"
#include "geometry/vec3.h"

#include <gtest/gtest.h>

#include "common/math_utils.h"

namespace bqs {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (Vec2{-1.0, -2.0}));
}

TEST(Vec2Test, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, 0.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 3.0);
  EXPECT_DOUBLE_EQ(b.Cross(a), 4.0);   // a is CCW from b
  EXPECT_DOUBLE_EQ(a.Cross(b), -4.0);
  EXPECT_DOUBLE_EQ(a.NormSq(), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::hypot(2.0, 4.0));
}

TEST(Vec2Test, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{0.0, 0.0}).Normalized(), (Vec2{0.0, 0.0}));
  const Vec2 n = Vec2{0.0, 5.0}.Normalized();
  EXPECT_NEAR(n.x, 0.0, 1e-15);
  EXPECT_NEAR(n.y, 1.0, 1e-15);
}

TEST(Vec2Test, RotationPreservesNormAndComposes) {
  const Vec2 v{3.0, 1.0};
  const Vec2 r = v.Rotated(kHalfPi);
  EXPECT_NEAR(r.x, -1.0, 1e-12);
  EXPECT_NEAR(r.y, 3.0, 1e-12);
  EXPECT_NEAR(r.Norm(), v.Norm(), 1e-12);
  const Vec2 back = r.Rotated(-kHalfPi);
  EXPECT_NEAR(back.x, v.x, 1e-12);
  EXPECT_NEAR(back.y, v.y, 1e-12);
}

TEST(Vec2Test, AngleAgreesWithAtan2) {
  EXPECT_DOUBLE_EQ((Vec2{1.0, 0.0}).Angle(), 0.0);
  EXPECT_NEAR((Vec2{0.0, 2.0}).Angle(), kHalfPi, 1e-15);
  EXPECT_NEAR((Vec2{-1.0, 0.0}).Angle(), kPi, 1e-15);
}

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_EQ(a + b, (Vec3{0.0, 2.5, 5.0}));
  EXPECT_EQ(a - b, (Vec3{2.0, 1.5, 1.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(3.0 * b, (Vec3{-3.0, 1.5, 6.0}));
}

TEST(Vec3Test, CrossIsOrthogonalAndRightHanded) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(x.Cross(y), (Vec3{0.0, 0.0, 1.0}));
  const Vec3 a{2.0, -1.0, 3.0};
  const Vec3 b{0.5, 4.0, -2.0};
  const Vec3 c = a.Cross(b);
  EXPECT_NEAR(c.Dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.Dot(b), 0.0, 1e-12);
}

TEST(Vec3Test, LiftAndProject) {
  const Vec2 p{4.0, -2.0};
  const Vec3 lifted(p, 7.0);
  EXPECT_DOUBLE_EQ(lifted.z, 7.0);
  EXPECT_EQ(lifted.XY(), p);
}

TEST(Vec3Test, NormalizedHandlesZero) {
  EXPECT_EQ((Vec3{}).Normalized(), (Vec3{}));
  EXPECT_NEAR((Vec3{2.0, 3.0, 6.0}).Norm(), 7.0, 1e-12);
}

}  // namespace
}  // namespace bqs
