// The paper's synthetic correlated-random-walk workload.
#include "simulation/random_walk.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace bqs {
namespace {

TEST(RandomWalkTest, GeneratesRequestedCount) {
  RandomWalkOptions options;
  options.num_points = 5000;
  const Trajectory walk = GenerateRandomWalk(options);
  EXPECT_EQ(walk.size(), 5000u);
}

TEST(RandomWalkTest, StaysInsideArea) {
  RandomWalkOptions options;
  options.num_points = 20000;
  options.area_m = 2000.0;
  options.seed = 5;
  const Trajectory walk = GenerateRandomWalk(options);
  for (const TrackPoint& p : walk) {
    EXPECT_GE(p.pos.x, -1e-9);
    EXPECT_LE(p.pos.x, 2000.0 + 1e-9);
    EXPECT_GE(p.pos.y, -1e-9);
    EXPECT_LE(p.pos.y, 2000.0 + 1e-9);
  }
}

TEST(RandomWalkTest, SpeedsRespectCeiling) {
  RandomWalkOptions options;
  options.num_points = 10000;
  options.max_speed_mps = 13.9;
  const Trajectory walk = GenerateRandomWalk(options);
  for (const TrackPoint& p : walk) {
    EXPECT_LE(p.velocity.Norm(), 13.9 + 1e-9);
  }
}

TEST(RandomWalkTest, TimeIsUniformlySampled) {
  RandomWalkOptions options;
  options.num_points = 1000;
  options.sample_interval_s = 2.0;
  const Trajectory walk = GenerateRandomWalk(options);
  for (std::size_t i = 1; i < walk.size(); ++i) {
    EXPECT_DOUBLE_EQ(walk[i].t - walk[i - 1].t, 2.0);
  }
}

TEST(RandomWalkTest, AlternatesWaitingAndMoving) {
  RandomWalkOptions options;
  options.num_points = 20000;
  options.seed = 6;
  const Trajectory walk = GenerateRandomWalk(options);
  std::size_t stationary = 0;
  std::size_t moving = 0;
  for (const TrackPoint& p : walk) {
    if (p.velocity.Norm() == 0.0) {
      ++stationary;
    } else {
      ++moving;
    }
  }
  // Both event types must be well represented.
  EXPECT_GT(stationary, walk.size() / 10);
  EXPECT_GT(moving, walk.size() / 10);
}

TEST(RandomWalkTest, VelocityConsistentWithDisplacement) {
  RandomWalkOptions options;
  options.num_points = 5000;
  options.seed = 7;
  const Trajectory walk = GenerateRandomWalk(options);
  // During a move step without a bounce, displacement = v * dt.
  int checked = 0;
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    const Vec2 step = walk[i + 1].pos - walk[i].pos;
    const Vec2 predicted =
        walk[i].velocity * (walk[i + 1].t - walk[i].t);
    if (walk[i].velocity.Norm() > 0.0 &&
        Distance(step, predicted) < 1e-9) {
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000);
}

TEST(RandomWalkTest, DeterministicPerSeed) {
  RandomWalkOptions options;
  options.num_points = 500;
  options.seed = 8;
  const Trajectory a = GenerateRandomWalk(options);
  const Trajectory b = GenerateRandomWalk(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  options.seed = 9;
  const Trajectory c = GenerateRandomWalk(options);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == c[i])) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace bqs
