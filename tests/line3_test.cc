// 3-D distance primitives used by the 3-D BQS.
#include "geometry/line3.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(Line3Test, PointToLineBasics) {
  // Line along x axis.
  EXPECT_DOUBLE_EQ(
      PointToLineDistance3({5, 3, 4}, {0, 0, 0}, {10, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(
      PointToLineDistance3({-7, 0, 2}, {0, 0, 0}, {10, 0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(
      PointToLineDistance3({42, 0, 0}, {0, 0, 0}, {10, 0, 0}), 0.0);
}

TEST(Line3Test, PointToLineDegenerate) {
  EXPECT_DOUBLE_EQ(
      PointToLineDistance3({1, 2, 2}, {0, 0, 0}, {0, 0, 0}), 3.0);
}

TEST(Line3Test, PointToSegmentClamps) {
  EXPECT_DOUBLE_EQ(
      PointToSegmentDistance3({13, 0, 4}, {0, 0, 0}, {10, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(
      PointToSegmentDistance3({5, 0, 4}, {0, 0, 0}, {10, 0, 0}), 4.0);
}

TEST(Line3Test, ProjectParam3) {
  EXPECT_DOUBLE_EQ(ProjectParam3({5, 9, 9}, {0, 0, 0}, {10, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(ProjectParam3({1, 1, 1}, {2, 2, 2}, {2, 2, 2}), 0.0);
}

TEST(Line3Test, LineToSegmentKnownCases) {
  // Skew perpendicular lines: x axis vs segment along y at z = 2.
  EXPECT_DOUBLE_EQ(LineToSegmentDistance3({0, 0, 0}, {10, 0, 0},
                                          {0, -5, 2}, {0, 5, 2}),
                   2.0);
  // Segment crossing the line.
  EXPECT_NEAR(LineToSegmentDistance3({0, 0, 0}, {10, 0, 0}, {5, -1, 0},
                                     {5, 1, 0}),
              0.0, 1e-12);
  // Parallel segment offset by 3.
  EXPECT_DOUBLE_EQ(LineToSegmentDistance3({0, 0, 0}, {10, 0, 0},
                                          {2, 3, 0}, {8, 3, 0}),
                   3.0);
}

TEST(Line3Test, LineToSegmentMatchesSampledMinimum) {
  Rng rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    const auto rand_vec = [&] {
      return Vec3{rng.Uniform(-40, 40), rng.Uniform(-40, 40),
                  rng.Uniform(-40, 40)};
    };
    const Vec3 a = rand_vec();
    const Vec3 b = rand_vec();
    const Vec3 c = rand_vec();
    const Vec3 d = rand_vec();
    const double computed = LineToSegmentDistance3(a, b, c, d);
    double sampled = 1e100;
    for (int i = 0; i <= 200; ++i) {
      const Vec3 p = c + (i / 200.0) * (d - c);
      sampled = std::min(sampled, PointToLineDistance3(p, a, b));
    }
    // The computed exact minimum must never exceed any sampled distance,
    // and must be close to the sampled minimum.
    EXPECT_LE(computed, sampled + 1e-9);
    EXPECT_GE(computed, sampled - 0.5);
  }
}

TEST(Line3Test, LineToSegmentDegenerateInputs) {
  // Zero-length "line": falls back to point-to-segment.
  EXPECT_DOUBLE_EQ(LineToSegmentDistance3({0, 0, 3}, {0, 0, 3},
                                          {-5, 0, 0}, {5, 0, 0}),
                   3.0);
  // Zero-length segment: point-to-line.
  EXPECT_DOUBLE_EQ(LineToSegmentDistance3({0, 0, 0}, {10, 0, 0},
                                          {4, 0, 7}, {4, 0, 7}),
                   7.0);
}

}  // namespace
}  // namespace bqs
