// Waypoint discovery and trip prediction over compressed trajectories.
#include "storage/waypoint_discovery.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/fbqs_compressor.h"
#include "core/time_sensitive.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

// A day: home (long stay) -> work (long stay) -> cafe or gym -> home.
Trajectory Day(Rng& rng, double t0, bool to_cafe) {
  const Vec2 home{0, 0};
  const Vec2 work{5000, 200};
  const Vec2 cafe{5200, 2200};
  const Vec2 gym{-1800, 2600};

  Trajectory out;
  double t = t0;
  const auto stay = [&](Vec2 where, double duration) {
    for (double s = 0.0; s < duration; s += 60.0) {
      out.push_back(TrackPoint{
          where + Vec2{rng.Normal(0, 3), rng.Normal(0, 3)}, t += 60.0, {}});
    }
  };
  const auto travel = [&](Vec2 from, Vec2 to) {
    const int steps = 30;
    for (int i = 1; i <= steps; ++i) {
      out.push_back(TrackPoint{
          from + (to - from) * (i / double(steps)), t += 60.0, {}});
    }
  };
  stay(home, 3600.0);
  travel(home, work);
  stay(work, 4.0 * 3600.0);
  const Vec2 third = to_cafe ? cafe : gym;
  travel(work, third);
  stay(third, 1800.0);
  travel(third, home);
  stay(home, 3600.0);
  return out;
}

// Stays must survive compression for discovery to see them; the
// time-sensitive compressor guarantees exactly that (shape-only FBQS may
// legally merge "stay + straight travel" into one segment).
TimeSensitiveCompressor MakeStayPreservingCompressor() {
  TimeSensitiveOptions options;
  options.epsilon = 15.0;
  options.time_scale = 0.05;  // 300 s of timing error ~ 15 m
  return TimeSensitiveCompressor(options);
}

TEST(WaypointDiscoveryTest, FindsTheRecurrentPlaces) {
  Rng rng(1);
  WaypointOptions options;
  options.min_dwell_s = 900.0;
  WaypointDiscovery discovery(options);
  TimeSensitiveCompressor compressor = MakeStayPreservingCompressor();
  for (int day = 0; day < 10; ++day) {
    const Trajectory trip = Day(rng, day * 86400.0, day % 3 != 0);
    discovery.Observe(CompressAll(compressor, trip));
  }

  // Home, work and two occasional third places.
  const auto all = discovery.Waypoints(1);
  ASSERT_GE(all.size(), 3u);
  ASSERT_LE(all.size(), 6u);

  const auto recurrent = discovery.Waypoints(8);
  ASSERT_GE(recurrent.size(), 2u);
  // The two most-visited places are home-like and work-like.
  EXPECT_LT(Distance(recurrent[0].center, {0, 0}), 300.0);
  bool work_found = false;
  for (const auto& wp : recurrent) {
    if (Distance(wp.center, {5000, 200}) < 300.0) work_found = true;
  }
  EXPECT_TRUE(work_found);
  // Dwell accounting: home's accumulated dwell dominates.
  EXPECT_GT(recurrent[0].total_dwell_s, 10 * 3600.0);
}

TEST(WaypointDiscoveryTest, TripsAndPrediction) {
  Rng rng(2);
  WaypointOptions options;
  options.min_dwell_s = 900.0;
  WaypointDiscovery discovery(options);
  TimeSensitiveCompressor compressor = MakeStayPreservingCompressor();
  for (int day = 0; day < 12; ++day) {
    discovery.Observe(
        CompressAll(compressor, Day(rng, day * 86400.0, day % 3 != 0)));
  }
  EXPECT_GE(discovery.trips().size(), 30u);

  // From home the next stop is overwhelmingly work.
  const auto home = discovery.Waypoints(10);
  ASSERT_FALSE(home.empty());
  const auto prediction = discovery.PredictNext(home[0].id);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_GT(prediction->second, 0.5);

  // Trips carry sensible timestamps.
  for (const Trip& trip : discovery.trips()) {
    EXPECT_LT(trip.depart_t, trip.arrive_t);
    EXPECT_NE(trip.from, trip.to);
  }
}

TEST(WaypointDiscoveryTest, NoStaysNoWaypoints) {
  WaypointDiscovery discovery;
  FbqsCompressor compressor(BqsOptions{.epsilon = 10.0});
  Trajectory line;
  for (int i = 0; i < 500; ++i) {
    line.push_back(TrackPoint{{i * 50.0, 0.0}, i * 10.0, {}});
  }
  discovery.Observe(CompressAll(compressor, line));
  EXPECT_EQ(discovery.waypoint_count(), 0u);
  EXPECT_FALSE(discovery.PredictNext(0).has_value());
}

TEST(WaypointDiscoveryTest, EmptyInputIsSafe) {
  WaypointDiscovery discovery;
  discovery.Observe(CompressedTrajectory{});
  EXPECT_EQ(discovery.waypoint_count(), 0u);
  EXPECT_TRUE(discovery.Waypoints().empty());
}

}  // namespace
}  // namespace bqs
