// FaultInjector: the deterministic fault-injection harness behind the
// fleet overload tests. The property everything else leans on: a site's
// fire schedule is a pure function of (seed, site, call index), so a seed
// replays the exact same fault sequence on every run — plus the max_fires
// cap, probability clamping, and the worker-stall gate.
#include "common/fault_injector.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace bqs {
namespace {

std::vector<bool> Schedule(uint64_t seed, FaultSite site, double probability,
                           int calls) {
  FaultInjector injector(seed);
  injector.Arm(site, probability);
  std::vector<bool> fires;
  fires.reserve(static_cast<std::size_t>(calls));
  for (int i = 0; i < calls; ++i) fires.push_back(injector.ShouldFire(site));
  return fires;
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalSchedule) {
  const auto a = Schedule(42, FaultSite::kRingFull, 0.3, 500);
  const auto b = Schedule(42, FaultSite::kRingFull, 0.3, 500);
  EXPECT_EQ(a, b);
  // A different seed almost surely diverges somewhere in 500 coin flips.
  const auto c = Schedule(43, FaultSite::kRingFull, 0.3, 500);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, SitesHaveIndependentSchedules) {
  // The same call index at different sites must not be correlated: the
  // site index perturbs the hash input.
  const auto ring = Schedule(7, FaultSite::kRingFull, 0.5, 500);
  const auto arena = Schedule(7, FaultSite::kArenaExhausted, 0.5, 500);
  EXPECT_NE(ring, arena);
}

TEST(FaultInjectorTest, ProbabilityRoughlyHonoredAndClamped) {
  int fired = 0;
  for (const bool f : Schedule(99, FaultSite::kMidBatchEvict, 0.5, 2000)) {
    fired += f ? 1 : 0;
  }
  // Loose 5-sigma-ish band around 1000: determinism makes this exact per
  // seed, the band just documents the coin is not degenerate.
  EXPECT_GT(fired, 800);
  EXPECT_LT(fired, 1200);

  // Out-of-range probabilities clamp instead of misbehaving.
  for (const bool f : Schedule(1, FaultSite::kRingFull, 2.0, 100)) {
    EXPECT_TRUE(f);
  }
  for (const bool f : Schedule(1, FaultSite::kRingFull, -0.5, 100)) {
    EXPECT_FALSE(f);
  }
}

TEST(FaultInjectorTest, UnarmedSiteNeverFiresAndCountsNoCalls) {
  FaultInjector injector(5);
  injector.Arm(FaultSite::kRingFull, 1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(injector.ShouldFire(FaultSite::kWorkerStall));
  }
  // The unarmed early-out skips even the call counter: production configs
  // with a null probability pay one load, no atomic traffic.
  EXPECT_EQ(injector.calls(FaultSite::kWorkerStall), 0u);
  EXPECT_EQ(injector.fires(FaultSite::kWorkerStall), 0u);
  EXPECT_EQ(injector.calls(FaultSite::kRingFull), 0u);
}

TEST(FaultInjectorTest, MaxFiresCapsTotalFirings) {
  FaultInjector injector(11);
  injector.Arm(FaultSite::kArenaExhausted, 1.0, /*max_fires=*/3);
  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    fired += injector.ShouldFire(FaultSite::kArenaExhausted) ? 1 : 0;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.fires(FaultSite::kArenaExhausted), 3u);
  EXPECT_EQ(injector.calls(FaultSite::kArenaExhausted), 20u);
}

TEST(FaultInjectorTest, StallGateParksUntilReleased) {
  FaultInjector injector(13);
  EXPECT_FALSE(injector.stalls_released());

  std::atomic<bool> woke{false};
  std::thread stalled([&] {
    injector.WaitStallReleased();
    woke.store(true);
  });
  // The thread must actually park: give it a moment to reach the wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());

  injector.ReleaseStalls();
  stalled.join();
  EXPECT_TRUE(woke.load());
  EXPECT_TRUE(injector.stalls_released());

  // Release is permanent: a later waiter passes straight through.
  injector.WaitStallReleased();
}

TEST(FaultInjectorTest, ConcurrentCallsPreserveTotalFireCount) {
  // ShouldFire is consulted from producer and worker threads at once; the
  // capped reservation must never over-fire under contention. (The
  // *schedule* is only per-thread-sequence deterministic; the cap is the
  // cross-thread invariant.)
  FaultInjector injector(17);
  injector.Arm(FaultSite::kWorkerStall, 1.0, /*max_fires=*/50);
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (injector.ShouldFire(FaultSite::kWorkerStall)) {
          fired.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fired.load(), 50);
  EXPECT_EQ(injector.fires(FaultSite::kWorkerStall), 50u);
  EXPECT_EQ(injector.calls(FaultSite::kWorkerStall), 4000u);
}

}  // namespace
}  // namespace bqs
