// Half-space vertex enumeration for the 3-D significant points.
#include "geometry/polyhedron.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(PolyhedronTest, BoxPlanesKeepInterior) {
  const Box3 box({0, 0, 0}, {2, 3, 4});
  const auto planes = BoxPlanes(box);
  ASSERT_EQ(planes.size(), 6u);
  EXPECT_TRUE(PolytopeContains(planes, {1, 1, 1}));
  EXPECT_TRUE(PolytopeContains(planes, {0, 0, 0}));   // corner
  EXPECT_TRUE(PolytopeContains(planes, {2, 3, 4}));   // corner
  EXPECT_FALSE(PolytopeContains(planes, {2.1, 1, 1}));
  EXPECT_FALSE(PolytopeContains(planes, {1, -0.1, 1}));
}

TEST(PolyhedronTest, BoxVerticesAreItsCorners) {
  const Box3 box({-1, -2, -3}, {4, 5, 6});
  const auto vertices = EnumerateVertices(BoxPlanes(box));
  EXPECT_EQ(vertices.size(), 8u);
  for (const Vec3& c : box.Corners()) {
    bool found = false;
    for (const Vec3& v : vertices) {
      if (Distance(v, c) < 1e-9) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(PolyhedronTest, CornerCutProducesTenVertices) {
  // Cutting one corner of a cube off replaces 1 vertex with 3.
  const Box3 box({0, 0, 0}, {1, 1, 1});
  const Plane3 cut = Plane3::FromPointNormal({0.25, 0, 0},
                                             Vec3{-1, -1, -1}.Normalized());
  const auto vertices = ClipBoxVertices(box, {cut});
  EXPECT_EQ(vertices.size(), 10u);
}

TEST(PolyhedronTest, HalfBoxKeepsExpectedVertices) {
  const Box3 box({0, 0, 0}, {2, 2, 2});
  // Keep z <= 1.
  const Plane3 cut = Plane3::FromPointNormal({0, 0, 1}, {0, 0, 1});
  const auto vertices = ClipBoxVertices(box, {cut});
  EXPECT_EQ(vertices.size(), 8u);
  for (const Vec3& v : vertices) {
    EXPECT_LE(v.z, 1.0 + 1e-9);
  }
}

TEST(PolyhedronTest, VerticesSatisfyAllHalfSpaces) {
  Rng rng(41);
  for (int iter = 0; iter < 100; ++iter) {
    Box3 box;
    box.Extend({rng.Uniform(0, 5), rng.Uniform(0, 5), rng.Uniform(0, 5)});
    box.Extend({rng.Uniform(5, 15), rng.Uniform(5, 15), rng.Uniform(5, 15)});
    std::vector<Plane3> cuts;
    const int k = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < k; ++i) {
      Vec3 n{rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
      if (n.Norm() < 1e-3) n = {0, 0, 1};
      // Through the box center so the region stays non-empty.
      cuts.push_back(Plane3::FromPointNormal(box.Center(), n.Normalized()));
    }
    std::vector<Plane3> all = BoxPlanes(box);
    all.insert(all.end(), cuts.begin(), cuts.end());
    const auto vertices = ClipBoxVertices(box, cuts);
    EXPECT_FALSE(vertices.empty());
    for (const Vec3& v : vertices) {
      EXPECT_TRUE(PolytopeContains(all, v, 1e-5));
      EXPECT_TRUE(box.Contains(Vec3{v.x + 1e-9, v.y + 1e-9, v.z + 1e-9}) ||
                  box.Contains(v) ||
                  PolytopeContains(BoxPlanes(box), v, 1e-5));
    }
  }
}

TEST(PolyhedronTest, ContainedPointsStayInsideClippedHull) {
  // Points satisfying all half-spaces must lie inside the hull of the
  // enumerated vertices (checked via max coordinate extents as a cheap
  // necessary condition, plus all-plane containment which is exact).
  Rng rng(42);
  const Box3 box({0, 0, 0}, {10, 10, 10});
  const Plane3 cut =
      Plane3::FromPointNormal({5, 5, 5}, Vec3{1, 1, 1}.Normalized());
  std::vector<Plane3> all = BoxPlanes(box);
  all.push_back(cut);
  const auto vertices = ClipBoxVertices(box, {cut});
  ASSERT_FALSE(vertices.empty());
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.Uniform(0, 10), rng.Uniform(0, 10), rng.Uniform(0, 10)};
    if (!PolytopeContains(all, p, 0.0)) continue;
    // p must be dominated by the vertex extents on every axis.
    double max_x = -1e100;
    for (const Vec3& v : vertices) max_x = std::max(max_x, v.x);
    EXPECT_LE(p.x, max_x + 1e-9);
  }
}

TEST(PolyhedronTest, EmptyBoxYieldsNothing) {
  EXPECT_TRUE(BoxPlanes(Box3()).empty());
  EXPECT_TRUE(EnumerateVertices({}).empty());
}

TEST(PolyhedronTest, DegeneratePointBox) {
  const Box3 box({3, 3, 3}, {3, 3, 3});
  const auto vertices = EnumerateVertices(BoxPlanes(box));
  ASSERT_GE(vertices.size(), 1u);
  for (const Vec3& v : vertices) {
    EXPECT_NEAR(Distance(v, {3, 3, 3}), 0.0, 1e-7);
  }
}

}  // namespace
}  // namespace bqs
