// Vehicle road-grid model: straight legs, orthogonal turns, bounded speeds.
#include "simulation/vehicle.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "geo/geodesy.h"
#include "geometry/angle.h"

namespace bqs {
namespace {

VehicleOptions SmallOptions() {
  VehicleOptions options;
  options.num_trips = 3;
  options.seed = 88;
  return options;
}

TEST(VehicleTest, MonotonicTime) {
  const GeoTrace trace = GenerateVehicleTrace(SmallOptions());
  ASSERT_GT(trace.size(), 300u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].t, trace[i - 1].t);
  }
}

TEST(VehicleTest, SpeedsBoundedByHighwayLimit) {
  const VehicleOptions options = SmallOptions();
  const GeoTrace trace = GenerateVehicleTrace(options);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace[i].t - trace[i - 1].t;
    if (dt <= 0.0 || dt > options.sample_interval_s * 1.5) continue;
    const double speed =
        HaversineMeters(trace[i - 1].pos, trace[i].pos) / dt;
    EXPECT_LT(speed, options.highway_speed_kmh / 3.6 * 1.1 + 3.0);
  }
}

TEST(VehicleTest, ContainsStops) {
  const VehicleOptions options = SmallOptions();
  const GeoTrace trace = GenerateVehicleTrace(options);
  std::size_t stopped = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double dt = trace[i].t - trace[i - 1].t;
    if (dt <= 0.0 || dt > options.sample_interval_s * 1.5) continue;
    if (HaversineMeters(trace[i - 1].pos, trace[i].pos) / dt < 1.0) {
      ++stopped;
    }
  }
  EXPECT_GT(stopped, 5u) << "traffic stops must appear in the trace";
}

TEST(VehicleTest, HeadingChangesShowRoadSignature) {
  // Road-network signature: between intersections the heading changes only
  // gently (straight runs and wide arcs), with occasional sharp ~90-degree
  // jumps at turns — unlike an unconstrained random walk.
  const VehicleOptions options = SmallOptions();
  const GeoTrace trace = GenerateVehicleTrace(options);
  const LocalTangentPlane plane(
      LatLon{options.anchor_lat, options.anchor_lon});
  std::size_t gentle = 0;
  std::size_t sharp = 0;
  std::size_t total = 0;
  Vec2 prev_dir{0, 0};
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const Vec2 a = plane.Project(trace[i - 1].pos);
    const Vec2 b = plane.Project(trace[i].pos);
    if (Distance(a, b) < 30.0) continue;  // skip stops/noise
    const Vec2 dir = (b - a).Normalized();
    if (prev_dir.NormSq() > 0.0) {
      const double delta =
          std::fabs(NormalizeAngle(dir.Angle() - prev_dir.Angle()));
      ++total;
      if (delta < 0.12) ++gentle;
      if (delta > 1.2) ++sharp;
    }
    prev_dir = dir;
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(gentle, total * 55 / 100)
      << "most consecutive steps follow the road";
  EXPECT_GT(sharp, 3u) << "grid turns must appear";
}

TEST(VehicleTest, TripsAreSeparatedByGaps) {
  const VehicleOptions options = SmallOptions();
  const GeoTrace trace = GenerateVehicleTrace(options);
  int gaps = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].t - trace[i - 1].t > options.trip_gap_s * 0.9) ++gaps;
  }
  EXPECT_EQ(gaps, options.num_trips - 1);
}

TEST(VehicleTest, Deterministic) {
  const GeoTrace a = GenerateVehicleTrace(SmallOptions());
  const GeoTrace b = GenerateVehicleTrace(SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[50], b[50]);
}

}  // namespace
}  // namespace bqs
