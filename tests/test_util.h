// Shared helpers for the test suite: deterministic stream generators that
// exercise compressors with realistic and adversarial shapes.
#ifndef BQS_TESTS_TEST_UTIL_H_
#define BQS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "simulation/random_walk.h"
#include "simulation/von_mises.h"
#include "trajectory/trajectory.h"

namespace bqs {
namespace testing_util {

/// Smooth-ish correlated random walk (the paper's synthetic model, small).
inline Trajectory SmoothWalk(uint64_t seed, std::size_t n) {
  RandomWalkOptions options;
  options.num_points = n;
  options.seed = seed;
  options.area_m = 4000.0;
  return GenerateRandomWalk(options);
}

/// Adversarially jagged stream: mixes stationary clusters, spikes, exact
/// duplicates, and backtracking through the segment start — the shapes that
/// stress the bound logic and the trivial-include end-validity handling.
inline Trajectory JaggedWalk(uint64_t seed, std::size_t n) {
  Rng rng(seed);
  Trajectory out;
  out.reserve(n);
  Vec2 pos{0.0, 0.0};
  double t = 0.0;
  while (out.size() < n) {
    const int mode = static_cast<int>(rng.UniformInt(0, 4));
    const int burst = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < burst && out.size() < n; ++i) {
      switch (mode) {
        case 0:  // drift
          pos += Vec2{rng.Normal(0.0, 6.0), rng.Normal(0.0, 6.0)};
          break;
        case 1:  // stationary / duplicates
          if (rng.Bernoulli(0.5)) {
            pos += Vec2{rng.Normal(0.0, 0.5), rng.Normal(0.0, 0.5)};
          }
          break;
        case 2:  // spike out and back
          pos += Vec2{rng.Uniform(-80.0, 80.0), rng.Uniform(-80.0, 80.0)};
          break;
        case 3:  // straight run
          pos += Vec2{12.0, 5.0};
          break;
        default:  // jump back near origin (backtrack through starts)
          pos = Vec2{rng.Normal(0.0, 2.0), rng.Normal(0.0, 2.0)};
          break;
      }
      t += 1.0;
      out.push_back(TrackPoint{pos, t, {0.0, 0.0}});
    }
  }
  return out;
}

/// Heading-persistent walk driven directly by von Mises turning angles (the
/// paper's turning model without the wait/move event machinery). Small
/// kappa = meandering, self-intersecting paths; large kappa = near-straight.
inline Trajectory VonMisesWalk(uint64_t seed, std::size_t n,
                               double kappa = 4.0, double step_m = 8.0) {
  Rng rng(seed);
  Trajectory out;
  out.reserve(n);
  Vec2 pos{0.0, 0.0};
  double heading = rng.Uniform(-kPi, kPi);
  for (std::size_t i = 0; i < n; ++i) {
    heading += SampleVonMises(rng, 0.0, kappa);
    const Vec2 vel{step_m * std::cos(heading), step_m * std::sin(heading)};
    pos += vel;
    out.push_back(TrackPoint{pos, static_cast<double>(i), vel});
  }
  return out;
}

/// Straight line with sub-tolerance lateral noise; the optimal compression
/// is the two endpoints.
inline Trajectory NoisyLine(uint64_t seed, std::size_t n, double noise) {
  Rng rng(seed);
  Trajectory out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) * 10.0;
    out.push_back(TrackPoint{{x, rng.Uniform(-noise, noise)},
                             static_cast<double>(i), {10.0, 0.0}});
  }
  return out;
}

}  // namespace testing_util
}  // namespace bqs

#endif  // BQS_TESTS_TEST_UTIL_H_
