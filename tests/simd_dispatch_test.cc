// Runtime SIMD dispatch (common/simd.h): tier detection against the
// compiler's own CPUID probe, the BQS_FORCE_SCALAR environment override,
// the ForceTier test hook, scratch alignment, and — the load-bearing
// guarantee — byte-identical compressor output across every tier the
// host can run.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "core/options.h"
#include "core/segment_state.h"
#include "test_util.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

// The suite manipulates process-global dispatch state (the forced tier
// and the BQS_FORCE_SCALAR variable), so every test restores both.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("BQS_FORCE_SCALAR");
    had_env_ = env != nullptr;
    if (had_env_) saved_env_ = env;
    unsetenv("BQS_FORCE_SCALAR");
    simd::ClearForcedTier();
  }
  void TearDown() override {
    if (had_env_) {
      setenv("BQS_FORCE_SCALAR", saved_env_.c_str(), 1);
    } else {
      unsetenv("BQS_FORCE_SCALAR");
    }
    simd::ClearForcedTier();
  }

 private:
  bool had_env_ = false;
  std::string saved_env_;
};

TEST_F(SimdDispatchTest, DetectedTierMatchesCpuid) {
#if defined(__x86_64__) || defined(_M_X64)
  // SSE2 is the x86-64 baseline, so the floor is kSse2; AVX2 iff the CPU
  // reports it. This re-derives DetectOnce() through the same builtin the
  // implementation uses — the test's value is catching a future edit that
  // detects one feature and dispatches another.
#if defined(__GNUC__) || defined(__clang__)
  const simd::Tier expected = __builtin_cpu_supports("avx2")
                                  ? simd::Tier::kAvx2
                                  : simd::Tier::kSse2;
  EXPECT_EQ(simd::DetectedTier(), expected);
#endif
  EXPECT_GE(static_cast<int>(simd::DetectedTier()),
            static_cast<int>(simd::Tier::kSse2));
#else
  EXPECT_EQ(simd::DetectedTier(), simd::Tier::kScalar);
#endif
}

TEST_F(SimdDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(simd::Tier::kSse2), "sse2");
  EXPECT_STREQ(simd::TierName(simd::Tier::kAvx2), "avx2");
}

TEST_F(SimdDispatchTest, ForceScalarEnvDemotesActiveTier) {
  setenv("BQS_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  // "0" is the documented off value; anything else turns the knob on.
  setenv("BQS_FORCE_SCALAR", "0", 1);
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
  setenv("BQS_FORCE_SCALAR", "yes", 1);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  unsetenv("BQS_FORCE_SCALAR");
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
}

TEST_F(SimdDispatchTest, ForcedTierIsClampedToDetected) {
  simd::ForceTier(simd::Tier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
  // Forcing above the CPU's capability clamps instead of dispatching an
  // illegal instruction set.
  simd::ForceTier(simd::Tier::kAvx2);
  EXPECT_EQ(simd::ActiveTier(),
            std::min(simd::Tier::kAvx2, simd::DetectedTier()));
  simd::ClearForcedTier();
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
}

TEST_F(SimdDispatchTest, ForcedTierOutranksEnvKnob) {
  // The fuzzer's cross-tier sweep relies on this precedence: under a
  // forced-scalar CI job the sweep must still reach the hardware tiers.
  setenv("BQS_FORCE_SCALAR", "1", 1);
  simd::ForceTier(simd::DetectedTier());
  EXPECT_EQ(simd::ActiveTier(), simd::DetectedTier());
}

TEST_F(SimdDispatchTest, KernelTableMatchesTier) {
  for (const simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    const simd::KernelTable& table = simd::KernelsFor(tier);
    EXPECT_LE(static_cast<int>(table.tier),
              static_cast<int>(simd::DetectedTier()));
    EXPECT_NE(table.prepare_rotated, nullptr);
    EXPECT_NE(table.screen_lanes, nullptr);
    EXPECT_NE(table.prepare_trivial, nullptr);
    EXPECT_NE(table.max_abs_cross, nullptr);
    switch (table.tier) {
      case simd::Tier::kScalar:
        EXPECT_EQ(table.lanes, 1u);
        break;
      case simd::Tier::kSse2:
        EXPECT_EQ(table.lanes, 2u);
        break;
      case simd::Tier::kAvx2:
        EXPECT_EQ(table.lanes, 4u);
        break;
    }
  }
}

TEST_F(SimdDispatchTest, EngineSnapshotsTierAtConstruction) {
  simd::ForceTier(simd::Tier::kScalar);
  BqsCompressor scalar_bqs;
  simd::ClearForcedTier();
  BqsCompressor native_bqs;
  EXPECT_EQ(scalar_bqs.engine().batch_tier(), simd::Tier::kScalar);
  EXPECT_EQ(native_bqs.engine().batch_tier(), simd::DetectedTier());
}

TEST_F(SimdDispatchTest, BatchScratchIsVectorAligned) {
  using Scratch = internal::SegmentEngine::BatchScratch;
  static_assert(alignof(Scratch) >= 32,
                "batch scratch must satisfy full-width AVX2 loads");
  static_assert(Scratch::kCapacity % 4 == 0,
                "capacity must hold whole 4-wide groups");

  // Runtime check on the lazily-allocated instance the engine actually
  // uses: push enough points to materialize it.
  BqsCompressor bqs;
  const Trajectory walk = testing_util::SmoothWalk(17, 256);
  std::vector<KeyPoint> out;
  bqs.PushBatch(walk, &out);
  const Scratch* s = bqs.engine().batch_scratch();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s->rx) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s->ry) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s->nsq) % 32, 0u);
}

// The core guarantee the dispatch layer sells: identical key streams no
// matter which tier ran the batch screen, across stream shapes chosen to
// exercise the fused trivial path, the warm-up screen, and the
// established-rotation quadrant screen.
TEST_F(SimdDispatchTest, OutputByteIdenticalAcrossTiers) {
  struct StreamCase {
    const char* name;
    Trajectory stream;
  };
  const StreamCase streams[] = {
      {"smooth", testing_util::SmoothWalk(5, 3000)},
      {"jagged", testing_util::JaggedWalk(9, 3000)},
  };
  BqsOptions options_cube[3];
  options_cube[0] = {};
  options_cube[1].paper_trivial_include = true;
  options_cube[2].metric = DistanceMetric::kPointToSegment;

  for (const StreamCase& sc : streams) {
    for (const BqsOptions& options : options_cube) {
      simd::ForceTier(simd::Tier::kScalar);
      BqsCompressor scalar_ref(options);
      const CompressedTrajectory expected =
          CompressAll(scalar_ref, sc.stream);

      for (const simd::Tier tier :
           {simd::Tier::kSse2, simd::Tier::kAvx2}) {
        simd::ForceTier(tier);
        BqsCompressor forced(options);
        const CompressedTrajectory got = CompressAll(forced, sc.stream);
        ASSERT_EQ(got.keys.size(), expected.keys.size())
            << sc.name << " under " << simd::TierName(tier);
        for (std::size_t i = 0; i < got.keys.size(); ++i) {
          ASSERT_TRUE(got.keys[i] == expected.keys[i])
              << sc.name << " under " << simd::TierName(tier)
              << " diverged at key " << i;
        }
      }
      simd::ClearForcedTier();
    }
  }
}

TEST_F(SimdDispatchTest, FbqsOutputByteIdenticalAcrossTiers) {
  const Trajectory stream = testing_util::JaggedWalk(23, 2000);
  simd::ForceTier(simd::Tier::kScalar);
  FbqsCompressor scalar_ref;
  const CompressedTrajectory expected = CompressAll(scalar_ref, stream);
  for (const simd::Tier tier : {simd::Tier::kSse2, simd::Tier::kAvx2}) {
    simd::ForceTier(tier);
    FbqsCompressor forced;
    const CompressedTrajectory got = CompressAll(forced, stream);
    ASSERT_EQ(got.keys.size(), expected.keys.size());
    for (std::size_t i = 0; i < got.keys.size(); ++i) {
      ASSERT_TRUE(got.keys[i] == expected.keys[i])
          << "diverged at key " << i << " under " << simd::TierName(tier);
    }
  }
}

}  // namespace
}  // namespace bqs
