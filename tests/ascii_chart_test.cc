// ASCII chart renderer used by the figure benches.
#include "eval/ascii_chart.h"

#include <sstream>

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(AsciiChartTest, EmptyChartPrintsNothing) {
  AsciiChart chart;
  std::ostringstream os;
  chart.Print(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(AsciiChartTest, SingleSeriesRenders) {
  AsciiChart chart(32, 8);
  chart.Add(ChartSeries{"rate", {0, 1, 2, 3}, {0.0, 1.0, 4.0, 9.0}});
  std::ostringstream os;
  chart.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("rate"), std::string::npos);
  // 8 grid rows + axis + labels + legend.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 10);
}

TEST(AsciiChartTest, TwoSeriesUseDistinctGlyphs) {
  AsciiChart chart(32, 8);
  chart.Add(ChartSeries{"a", {0, 1}, {0, 1}});
  chart.Add(ChartSeries{"b", {0, 1}, {1, 0}});
  std::ostringstream os;
  chart.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart(16, 4);
  chart.Add(ChartSeries{"flat", {1, 2, 3}, {5, 5, 5}});
  std::ostringstream os;
  chart.Print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(AsciiChartTest, SinglePointSeries) {
  AsciiChart chart(16, 4);
  chart.Add(ChartSeries{"dot", {2}, {3}});
  std::ostringstream os;
  chart.Print(os);
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiChartTest, DegenerateDimensionsAreClamped) {
  // width <= 20 used to wrap the x-axis printf field width negative, and
  // height <= 1 divided by zero when scaling rows; both are clamped now.
  AsciiChart chart(1, 1);
  chart.Add(ChartSeries{"tiny", {0, 1, 2}, {0, 4, 8}});
  std::ostringstream os;
  chart.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_EQ(out.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace bqs
