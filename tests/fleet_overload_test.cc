// FleetEngine overload resilience: admission control and load shedding
// under the kShed* policies, per-device token-bucket fairness, the
// eps-coarsening degradation ladder, and the deterministic fault-injection
// sites that make all of it reproducible from a seed.
//
// The accounting invariant every scenario pins: after FinishAll(), every
// fed record is exactly one of ingested, shed, or dropped — shedding is
// loud and fully accounted, never silent.
#include "common/fault_injector.h"
#include "service/fleet_engine.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "gtest/gtest.h"
#include "simulation/datasets.h"
#include "test_util.h"
#include "trajectory/compressor.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

/// Collects per-device output and lifecycle events; OnKeyPoint may fire
/// concurrently for different devices, so every mutation locks.
class CollectingSink : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[device].push_back(key);
  }
  void OnSessionEnd(DeviceId device, SessionEndReason reason) override {
    std::lock_guard<std::mutex> lock(mu_);
    ends_[device].push_back(reason);
  }
  void OnErrorBoundChanged(DeviceId device, double error_bound) override {
    std::lock_guard<std::mutex> lock(mu_);
    bounds_[device].push_back(error_bound);
  }

  std::map<DeviceId, std::vector<KeyPoint>> keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }
  std::map<DeviceId, std::vector<SessionEndReason>> ends() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ends_;
  }
  std::map<DeviceId, std::vector<double>> bounds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bounds_;
  }

 private:
  mutable std::mutex mu_;
  std::map<DeviceId, std::vector<KeyPoint>> keys_;
  std::map<DeviceId, std::vector<SessionEndReason>> ends_;
  std::map<DeviceId, std::vector<double>> bounds_;
};

AlgorithmConfig ConfigFor(AlgorithmId id) {
  AlgorithmConfig config;
  config.id = id;
  config.epsilon = 8.0;
  return config;
}

std::vector<FleetRecord> ToFeed(DeviceId device, const Trajectory& stream) {
  std::vector<FleetRecord> feed;
  feed.reserve(stream.size());
  for (const TrackPoint& pt : stream) feed.push_back({device, pt});
  return feed;
}

std::vector<KeyPoint> ReferenceKeys(const AlgorithmConfig& config,
                                    std::span<const TrackPoint> stream) {
  auto compressor = MakeStreamCompressor(config);
  return CompressAll(*compressor, stream).keys;
}

/// Rebuilds a CompressedTrajectory whose key indices point into `original`,
/// by matching the emitted keys (which are always original points, in
/// stream order) forward through the stream. Degradation reseats restart
/// the compressor-local indices mid-stream, so the emitted indices cannot
/// be used directly; the points themselves still identify their position.
CompressedTrajectory MapKeysToStream(std::span<const TrackPoint> original,
                                     const std::vector<KeyPoint>& keys) {
  CompressedTrajectory out;
  std::size_t cursor = 0;
  for (const KeyPoint& key : keys) {
    while (cursor < original.size() && !(original[cursor] == key.point)) {
      ++cursor;
    }
    EXPECT_LT(cursor, original.size()) << "emitted key not in stream";
    out.keys.push_back(KeyPoint{key.point, cursor});
    ++cursor;  // indices must be strictly increasing
  }
  return out;
}

// --- shedding ------------------------------------------------------------

TEST(FleetOverloadTest, ShedNewestIsDeterministicAndFullyAccounted) {
  // The kRingFull fault makes seals see a full ring on a seeded schedule,
  // so the shed path runs on cue instead of depending on worker timing.
  const FleetDataset fleet = BuildFleetDataset(6, 0.02, 8101);
  FleetStats first;
  std::map<DeviceId, std::vector<KeyPoint>> first_keys;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(2024);
    injector.Arm(FaultSite::kRingFull, 0.4);
    CollectingSink sink;
    FleetEngineOptions options;
    options.algorithm = ConfigFor(AlgorithmId::kBqs);
    options.num_shards = 2;
    options.block_capacity = 16;
    options.overload.policy = OverloadPolicy::kShedNewest;
    options.fault_injector = &injector;
    FleetEngine engine(options, sink);
    engine.IngestBatch(fleet.feed);
    engine.FinishAll();
    const FleetStats stats = engine.Stats();

    EXPECT_GT(stats.records_shed, 0u);
    EXPECT_GT(stats.shed_batches, 0u);
    // No latency budget: full-ring sheds are accounted as ring_full.
    EXPECT_EQ(stats.shed_ring_full, stats.records_shed);
    EXPECT_EQ(stats.shed_latency, 0u);
    EXPECT_GT(stats.faults_injected, 0u);
    // The invariant: every fed record is ingested, shed, or dropped.
    EXPECT_EQ(stats.records_ingested + stats.records_shed +
                  stats.records_dropped,
              fleet.feed.size());

    if (run == 0) {
      first = stats;
      first_keys = sink.keys();
    } else {
      // Same seed, same feed: the whole shed schedule — and therefore the
      // surviving stream and its compressed output — replays exactly.
      EXPECT_EQ(stats.records_shed, first.records_shed);
      EXPECT_EQ(stats.records_ingested, first.records_ingested);
      EXPECT_EQ(stats.faults_injected, first.faults_injected);
      EXPECT_EQ(sink.keys(), first_keys);
    }
  }
}

TEST(FleetOverloadTest, ShedByDeviceRateLimitsHotDeviceNotColdDevice) {
  // One hot device floods at 100 records/s of stream time; one cold device
  // trickles at 1/s against a 5/s admission rate. Under kShedByDevice the
  // hot device loses its over-rate suffix and the cold device's records
  // all survive — its output must stay byte-identical to compressing its
  // stream alone, the fairness property that distinguishes this policy
  // from kShedNewest.
  const DeviceId kHot = 1;
  const DeviceId kCold = 2;
  Trajectory hot_stream;
  for (int i = 0; i < 400; ++i) {
    hot_stream.push_back(
        TrackPoint{{static_cast<double>(i), 0.0}, i * 0.01});
  }
  Trajectory cold_stream;
  for (int i = 0; i < 5; ++i) {
    cold_stream.push_back(
        TrackPoint{{0.0, static_cast<double>(i)}, 0.5 + i});
  }
  // Interleave by stream time, hot first on ties.
  std::vector<FleetRecord> feed;
  std::size_t h = 0;
  std::size_t c = 0;
  while (h < hot_stream.size() || c < cold_stream.size()) {
    if (c >= cold_stream.size() ||
        (h < hot_stream.size() && hot_stream[h].t <= cold_stream[c].t)) {
      feed.push_back({kHot, hot_stream[h++]});
    } else {
      feed.push_back({kCold, cold_stream[c++]});
    }
  }

  FaultInjector injector(77);
  injector.Arm(FaultSite::kRingFull, 1.0, /*max_fires=*/6);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 2;
  options.block_capacity = 16;
  options.overload.policy = OverloadPolicy::kShedByDevice;
  options.overload.device_rate_per_second = 5.0;
  options.fault_injector = &injector;
  FleetEngine engine(options, sink);
  engine.IngestBatch(feed);
  engine.FinishAll();
  const FleetStats stats = engine.Stats();

  EXPECT_GT(stats.shed_rate_limited, 0u);
  EXPECT_EQ(stats.shed_rate_limited, stats.records_shed)
      << "compaction found an over-rate device, so no block shed whole";
  EXPECT_EQ(stats.records_ingested + stats.records_shed, feed.size());

  // The cold device never exceeded its rate: nothing of its stream was
  // shed, so its compressed output matches the sequential reference.
  const auto keys = sink.keys();
  ASSERT_TRUE(keys.contains(kCold));
  EXPECT_EQ(keys.at(kCold),
            ReferenceKeys(ConfigFor(AlgorithmId::kBqs), cold_stream));
}

TEST(FleetOverloadTest, LatencyBudgetBoundsIngestWhenWorkerStalls) {
  // Park the shard worker via the kWorkerStall site: the ring backs up for
  // real, and the per-batch latency budget turns unbounded blocking into
  // bounded waiting plus accounted latency sheds.
  const Trajectory stream = testing_util::SmoothWalk(8102, 200);
  const std::vector<FleetRecord> feed = ToFeed(1, stream);

  FaultInjector injector(5150);
  injector.Arm(FaultSite::kWorkerStall, 1.0, /*max_fires=*/1);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 2;
  options.block_capacity = 16;
  options.max_pending_blocks = 1;
  options.overload.policy = OverloadPolicy::kShedNewest;
  options.overload.latency_budget_ms = 5.0;
  options.fault_injector = &injector;
  FleetEngine engine(options, sink);
  engine.IngestBatch(feed);
  // IngestBatch returned with the worker still parked — the bounded-wait
  // guarantee in action. Release the gate so the drain can finish.
  EXPECT_EQ(injector.fires(FaultSite::kWorkerStall), 1u);
  injector.ReleaseStalls();
  engine.FinishAll();
  const FleetStats stats = engine.Stats();

  EXPECT_GT(stats.shed_latency, 0u);
  EXPECT_EQ(stats.shed_latency, stats.records_shed);
  EXPECT_GE(stats.faults_injected, 1u);
  EXPECT_GE(stats.backpressure_waits, 1u);  // the timed waits that expired
  EXPECT_EQ(stats.records_ingested + stats.records_shed, feed.size());
}

TEST(FleetOverloadTest, ArenaExhaustionShedsExactlyTheDeniedRecords) {
  const Trajectory stream = testing_util::SmoothWalk(8103, 200);
  const std::vector<FleetRecord> feed = ToFeed(1, stream);

  FaultInjector injector(31337);
  injector.Arm(FaultSite::kArenaExhausted, 1.0, /*max_fires=*/3);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 2;
  options.block_capacity = 16;
  options.overload.policy = OverloadPolicy::kShedNewest;
  options.fault_injector = &injector;
  FleetEngine engine(options, sink);
  engine.IngestBatch(feed);
  engine.FinishAll();
  const FleetStats stats = engine.Stats();

  // The denial fires on the first three block acquisitions — the first
  // three records of the batch, exactly, nothing else.
  EXPECT_EQ(stats.shed_arena, 3u);
  EXPECT_EQ(stats.records_shed, 3u);
  EXPECT_EQ(stats.faults_injected, 3u);
  EXPECT_EQ(stats.records_ingested, feed.size() - 3);

  // The survivors are the stream minus its first three records; their
  // compressed output is byte-identical to compressing that suffix alone.
  const auto keys = sink.keys();
  ASSERT_TRUE(keys.contains(1));
  EXPECT_EQ(keys.at(1),
            ReferenceKeys(ConfigFor(AlgorithmId::kBqs),
                          std::span<const TrackPoint>(stream).subspan(3)));
}

TEST(FleetOverloadTest, BlockPolicyNeverShedsEvenWithFaultsFiring) {
  // Under the default kBlock policy the injector's producer-side sites are
  // counted but change nothing: no record is ever shed and the output
  // stays byte-identical — the guard that shedding is strictly opt-in.
  const FleetDataset fleet = BuildFleetDataset(4, 0.02, 8104);
  const AlgorithmConfig config = ConfigFor(AlgorithmId::kBqs);
  std::map<DeviceId, std::vector<KeyPoint>> reference;
  for (const auto& [device, stream] : fleet.devices) {
    reference[device] = ReferenceKeys(config, stream);
  }

  FaultInjector injector(99);
  injector.Arm(FaultSite::kRingFull, 1.0);
  injector.Arm(FaultSite::kArenaExhausted, 1.0);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = config;
  options.num_shards = 2;
  options.block_capacity = 16;
  options.fault_injector = &injector;
  FleetEngine engine(options, sink);
  engine.IngestBatch(fleet.feed);
  engine.FinishAll();
  const FleetStats stats = engine.Stats();

  EXPECT_EQ(stats.records_shed, 0u);
  EXPECT_EQ(stats.shed_batches, 0u);
  EXPECT_GT(stats.faults_injected, 0u);
  EXPECT_EQ(stats.records_ingested, fleet.feed.size());
  EXPECT_EQ(sink.keys(), reference);
}

TEST(FleetOverloadTest, MidBatchEvictClosesSessionWhichReopensCleanly) {
  // The injected eviction closes the session right after a dispatched run;
  // the device's next record transparently opens a fresh session. Each
  // segment must be byte-identical to compressing its slice alone.
  const Trajectory walk = testing_util::SmoothWalk(8105, 140);
  const std::span<const TrackPoint> all(walk);
  const auto slice1 = all.subspan(0, 80);
  const auto slice2 = all.subspan(80);

  FaultInjector injector(404);
  injector.Arm(FaultSite::kMidBatchEvict, 1.0, /*max_fires=*/1);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 1;  // inline: the fast path has the hook too
  options.fault_injector = &injector;
  FleetEngine engine(options, sink);

  std::vector<FleetRecord> batch1;
  for (const TrackPoint& pt : slice1) batch1.push_back({1, pt});
  std::vector<FleetRecord> batch2;
  for (const TrackPoint& pt : slice2) batch2.push_back({1, pt});
  engine.IngestBatch(batch1);  // evicted right after this dispatch
  engine.IngestBatch(batch2);  // reopens
  engine.FinishAll();
  const FleetStats stats = engine.Stats();

  EXPECT_EQ(stats.sessions_evicted, 1u);
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.faults_injected, 1u);
  const auto ends = sink.ends();
  ASSERT_TRUE(ends.contains(1));
  EXPECT_EQ(ends.at(1),
            (std::vector<SessionEndReason>{SessionEndReason::kEvicted,
                                           SessionEndReason::kFinished}));

  const AlgorithmConfig config = ConfigFor(AlgorithmId::kBqs);
  std::vector<KeyPoint> expected = ReferenceKeys(config, slice1);
  const std::vector<KeyPoint> second = ReferenceKeys(config, slice2);
  expected.insert(expected.end(), second.begin(), second.end());
  EXPECT_EQ(sink.keys().at(1), expected);
}

// --- eps-coarsening degradation ------------------------------------------

TEST(FleetOverloadTest, EpsLadderDegradesUnderPressureAndBoundsHold) {
  // Three devices fed sequentially against a budget two grown sessions
  // cannot share: the ladder steps idle sessions to widened epsilons
  // instead of evicting them, and every emitted point must still honor the
  // widest bound the engine reports.
  const AlgorithmConfig config = ConfigFor(AlgorithmId::kBqs);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = config;
  options.num_shards = 1;
  options.memory_budget_bytes = 4096;
  options.overload.eps_ladder = {2.0, 4.0};
  FleetEngine engine(options, sink);

  std::map<DeviceId, Trajectory> streams;
  for (DeviceId device = 1; device <= 3; ++device) {
    streams[device] = testing_util::SmoothWalk(8200 + device, 200);
    for (const TrackPoint& pt : streams[device]) engine.Ingest(device, pt);
  }
  const FleetStats mid = engine.Stats();
  EXPECT_GT(mid.sessions_degraded, 0u);
  EXPECT_GT(mid.degraded_sessions, 0u);
  EXPECT_EQ(mid.sessions_evicted, 0u)
      << "the ladder should absorb this pressure without evicting";
  // The reported fleet-wide bound is a real ladder rung.
  EXPECT_GE(mid.max_error_bound, 2.0 * config.epsilon);
  EXPECT_LE(mid.max_error_bound, 4.0 * config.epsilon);

  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.records_ingested, 600u);
  EXPECT_EQ(stats.degraded_sessions, 0u);  // nothing live anymore

  // Degradation announcements went to the sink, and each announced bound
  // is a ladder rung (or the base epsilon, on recovery).
  const auto bounds = sink.bounds();
  ASSERT_FALSE(bounds.empty());
  for (const auto& [device, history] : bounds) {
    (void)device;
    for (const double b : history) {
      EXPECT_TRUE(b == config.epsilon || b == 2.0 * config.epsilon ||
                  b == 4.0 * config.epsilon)
          << b;
    }
  }

  // The widened-bound contract, verified geometrically: re-segment each
  // device's original stream by its emitted keys and measure true
  // deviation. Every segment was produced by a compressor honoring some
  // rung's epsilon, so the stream-wide max is within the reported bound.
  const auto keys = sink.keys();
  for (const auto& [device, stream] : streams) {
    ASSERT_TRUE(keys.contains(device));
    const CompressedTrajectory mapped =
        MapKeysToStream(stream, keys.at(device));
    const DeviationReport report =
        EvaluateCompression(stream, mapped, config.metric);
    EXPECT_TRUE(report.BoundedBy(stats.max_error_bound))
        << "device " << device << " deviated " << report.max_deviation
        << " > " << stats.max_error_bound;
  }
}

TEST(FleetOverloadTest, EpsLadderRecoversWhenPressureClears) {
  const AlgorithmConfig config = ConfigFor(AlgorithmId::kBqs);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = config;
  options.num_shards = 1;
  options.memory_budget_bytes = 4096;
  options.max_pooled_compressors = 0;  // keep the pool out of the headroom
  options.overload.eps_ladder = {2.0};
  FleetEngine engine(options, sink);

  const Trajectory walk_a = testing_util::SmoothWalk(8301, 250);
  const std::span<const TrackPoint> a(walk_a);
  const Trajectory walk_b = testing_util::SmoothWalk(8302, 200);

  // Grow device 1, then let device 2's growth degrade it (LRU order).
  for (const TrackPoint& pt : a.subspan(0, 200)) engine.Ingest(1, pt);
  for (const TrackPoint& pt : walk_b) engine.Ingest(2, pt);
  const FleetStats mid = engine.Stats();
  EXPECT_GE(mid.sessions_degraded, 1u);
  EXPECT_EQ(mid.sessions_evicted, 0u);

  // Pressure clears; device 1's next records step it back to base eps.
  engine.FinishDevice(2);
  for (const TrackPoint& pt : a.subspan(200)) engine.Ingest(1, pt);
  engine.FinishAll();
  const FleetStats stats = engine.Stats();

  EXPECT_GE(stats.sessions_recovered, 1u);
  EXPECT_EQ(stats.degraded_sessions, 0u);
  const auto bounds = sink.bounds();
  ASSERT_TRUE(bounds.contains(1));
  ASSERT_GE(bounds.at(1).size(), 2u);
  EXPECT_EQ(bounds.at(1).front(), 2.0 * config.epsilon);  // degrade...
  EXPECT_EQ(bounds.at(1).back(), config.epsilon);         // ...then recover
  EXPECT_EQ(stats.max_error_bound, 2.0 * config.epsilon);
}

}  // namespace
}  // namespace bqs
