// Time-sensitive compression: the error bound holds in the lifted
// (x, y, scaled-t) space, which is the paper's Section V-G use case.
#include "core/time_sensitive.h"

#include <gtest/gtest.h>

#include "core/fbqs_compressor.h"
#include "geometry/line3.h"
#include "test_util.h"

namespace bqs {
namespace {

using testing_util::SmoothWalk;

// Lifts the original stream the same way the compressor does and measures
// the exact 3-D deviation against the compressed keys.
double LiftedMaxDeviation(const Trajectory& walk,
                          const CompressedTrajectory& keys,
                          double time_scale) {
  if (keys.size() < 2 || walk.empty()) return 0.0;
  const double t0 = walk.front().t;
  const auto lift = [&](const TrackPoint& p) {
    return Vec3{p.pos.x, p.pos.y, (p.t - t0) * time_scale};
  };
  double worst = 0.0;
  for (std::size_t s = 0; s + 1 < keys.size(); ++s) {
    const std::size_t from = static_cast<std::size_t>(keys.keys[s].index);
    const std::size_t to = static_cast<std::size_t>(keys.keys[s + 1].index);
    const Vec3 a = lift(walk[from]);
    const Vec3 b = lift(walk[to]);
    for (std::size_t i = from + 1; i < to; ++i) {
      worst = std::max(worst, PointToLineDistance3(lift(walk[i]), a, b));
    }
  }
  return worst;
}

TEST(TimeSensitiveTest, LiftedDeviationIsBounded) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    const Trajectory walk = SmoothWalk(seed, 2500);
    TimeSensitiveOptions options;
    options.epsilon = 12.0;
    options.time_scale = 1.0;
    TimeSensitiveCompressor compressor(options);
    const CompressedTrajectory compressed = CompressAll(compressor, walk);
    EXPECT_LE(LiftedMaxDeviation(walk, compressed, options.time_scale),
              options.epsilon * (1.0 + 1e-9));
  }
}

TEST(TimeSensitiveTest, PenalizesStopsThatPlainBqsDiscards) {
  // An object that runs, waits, then runs on the same straight line: shape-
  // only compression keeps 2 points, but a time-sensitive bound must keep a
  // key near the stop or the reconstructed position at stop time is wrong.
  Trajectory walk;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {  // run east 500 m
    walk.push_back(TrackPoint{{i * 10.0, 0.0}, t, {10.0, 0.0}});
    t += 1.0;
  }
  for (int i = 0; i < 100; ++i) {  // wait at x = 500 for 100 s
    walk.push_back(TrackPoint{{500.0, 0.0}, t, {0.0, 0.0}});
    t += 1.0;
  }
  for (int i = 1; i <= 50; ++i) {  // run east again
    walk.push_back(TrackPoint{{500.0 + i * 10.0, 0.0}, t, {10.0, 0.0}});
    t += 1.0;
  }

  TimeSensitiveOptions options;
  options.epsilon = 15.0;
  options.time_scale = 1.0;  // 1 s of temporal error == 1 m
  TimeSensitiveCompressor ts(options);
  const CompressedTrajectory via_ts = CompressAll(ts, walk);
  EXPECT_GE(via_ts.size(), 4u)
      << "the stop must survive time-sensitive compression";

  FbqsCompressor plain(BqsOptions{.epsilon = 15.0});
  const CompressedTrajectory via_plain = CompressAll(plain, walk);
  EXPECT_EQ(via_plain.size(), 2u)
      << "shape-only compression collapses the whole run";
}

TEST(TimeSensitiveTest, ZeroTimeScaleDegeneratesToShapeOnly) {
  const Trajectory walk = SmoothWalk(9, 1500);
  TimeSensitiveOptions options;
  options.epsilon = 10.0;
  options.time_scale = 0.0;
  TimeSensitiveCompressor ts(options);
  const CompressedTrajectory compressed = CompressAll(ts, walk);
  // With z identically 0 the lifted bound equals the planar bound.
  EXPECT_LE(LiftedMaxDeviation(walk, compressed, 0.0),
            options.epsilon * (1.0 + 1e-9));
}

TEST(TimeSensitiveTest, ResetAllowsReuse) {
  const Trajectory walk = SmoothWalk(10, 800);
  TimeSensitiveCompressor ts(TimeSensitiveOptions{});
  const auto first = CompressAll(ts, walk);
  const auto second = CompressAll(ts, walk);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.keys[i].index, second.keys[i].index);
  }
}

TEST(TimeSensitiveTest, OptionsValidate) {
  TimeSensitiveOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.epsilon = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options.epsilon = 5.0;
  options.time_scale = -0.1;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace bqs
