// Trajectory containers, projection and stream utilities.
#include "trajectory/trajectory.h"

#include <gtest/gtest.h>

#include "geo/geodesy.h"

namespace bqs {
namespace {

Trajectory Line(int n, double step) {
  Trajectory t;
  for (int i = 0; i < n; ++i) {
    t.push_back(TrackPoint{{i * step, 0.0}, static_cast<double>(i), {}});
  }
  return t;
}

TEST(TrajectoryTest, PathLengthAndDuration) {
  const Trajectory t = Line(11, 5.0);
  EXPECT_DOUBLE_EQ(PathLength(t), 50.0);
  EXPECT_DOUBLE_EQ(Duration(t), 10.0);
  EXPECT_DOUBLE_EQ(PathLength({}), 0.0);
  EXPECT_DOUBLE_EQ(Duration({}), 0.0);
  EXPECT_DOUBLE_EQ(Duration(std::span<const TrackPoint>(t.data(), 1)), 0.0);
}

TEST(TrajectoryTest, BoundsOf) {
  Trajectory t;
  t.push_back(TrackPoint{{1, 5}, 0, {}});
  t.push_back(TrackPoint{{-2, 3}, 1, {}});
  const Box2 box = BoundsOf(t);
  EXPECT_EQ(box.min(), (Vec2{-2, 3}));
  EXPECT_EQ(box.max(), (Vec2{1, 5}));
}

TEST(TrajectoryTest, CompressionRate) {
  CompressedTrajectory c;
  c.keys.resize(5);
  EXPECT_DOUBLE_EQ(c.CompressionRate(100), 0.05);
  EXPECT_DOUBLE_EQ(c.CompressionRate(0), 0.0);
}

TEST(TrajectoryTest, FillVelocitiesCentralDifferences) {
  Trajectory t = Line(5, 10.0);  // 10 m/s along x
  FillVelocities(&t);
  for (const TrackPoint& p : t) {
    EXPECT_NEAR(p.velocity.x, 10.0, 1e-12);
    EXPECT_NEAR(p.velocity.y, 0.0, 1e-12);
  }
}

TEST(TrajectoryTest, FillVelocitiesHandlesZeroDt) {
  Trajectory t;
  t.push_back(TrackPoint{{0, 0}, 5.0, {}});
  t.push_back(TrackPoint{{10, 0}, 5.0, {}});  // same timestamp
  FillVelocities(&t);
  EXPECT_EQ(t[0].velocity, (Vec2{0, 0}));
  Trajectory single;
  single.push_back(TrackPoint{{0, 0}, 0, {3, 4}});
  FillVelocities(&single);  // untouched
  EXPECT_EQ(single[0].velocity, (Vec2{3, 4}));
}

TEST(TrajectoryTest, ProjectTraceEmptyFails) {
  EXPECT_FALSE(ProjectTrace({}).ok());
}

TEST(TrajectoryTest, ProjectTraceUtmPreservesDistances) {
  GeoTrace trace;
  for (int i = 0; i < 20; ++i) {
    trace.push_back(GeoSample{{-27.47 + i * 0.001, 153.02}, i * 60.0});
  }
  const auto projected = ProjectTrace(trace, ProjectionKind::kUtm);
  ASSERT_TRUE(projected.ok());
  const Trajectory& t = projected.value();
  ASSERT_EQ(t.size(), trace.size());
  const double step = Distance(t[1].pos, t[0].pos);
  const double geo = HaversineMeters(trace[0].pos, trace[1].pos);
  EXPECT_NEAR(step / geo, 1.0, 0.01);
  // Velocities are filled.
  EXPECT_GT(t[1].velocity.Norm(), 0.0);
}

TEST(TrajectoryTest, ProjectTraceSingleZoneAcrossBoundary) {
  // Fixes straddling a UTM zone boundary stay in one continuous plane.
  GeoTrace trace;
  for (int i = 0; i < 10; ++i) {
    trace.push_back(GeoSample{{10.0, 11.95 + i * 0.02}, i * 1.0});
  }
  const auto projected = ProjectTrace(trace, ProjectionKind::kUtm);
  ASSERT_TRUE(projected.ok());
  const Trajectory& t = projected.value();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GT(t[i].pos.x, t[i - 1].pos.x) << "seam at fix " << i;
  }
}

TEST(TrajectoryTest, ProjectTraceTangentPlane) {
  GeoTrace trace;
  trace.push_back(GeoSample{{-27.47, 153.02}, 0.0});
  trace.push_back(GeoSample{{-27.47, 153.03}, 60.0});
  const auto projected = ProjectTrace(trace, ProjectionKind::kTangentPlane);
  ASSERT_TRUE(projected.ok());
  EXPECT_NEAR(projected.value()[0].pos.x, 0.0, 1e-9);
  EXPECT_GT(projected.value()[1].pos.x, 900.0);
}

TEST(TrajectoryTest, ConcatenateStreamsKeepsMonotonicTime) {
  const Trajectory a = Line(5, 1.0);
  Trajectory b = Line(5, 1.0);
  for (auto& p : b) p.t += 1000.0;  // different epoch
  const Trajectory merged = ConcatenateStreams({a, b}, 30.0);
  ASSERT_EQ(merged.size(), 10u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GT(merged[i].t, merged[i - 1].t);
  }
  // Gap between streams is exactly 30 s.
  EXPECT_DOUBLE_EQ(merged[5].t - merged[4].t, 30.0);
}

TEST(TrajectoryTest, ConcatenateSkipsEmpty) {
  const Trajectory merged = ConcatenateStreams({{}, Line(3, 1.0), {}});
  EXPECT_EQ(merged.size(), 3u);
}

}  // namespace
}  // namespace bqs
