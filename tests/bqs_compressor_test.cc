// BqsCompressor: the error-bound guarantee, differential equivalence with
// the exact greedy reference, decision statistics, and edge cases.
#include "core/bqs_compressor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "baselines/buffered_greedy.h"
#include "test_util.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

using testing_util::JaggedWalk;
using testing_util::NoisyLine;
using testing_util::SmoothWalk;

class BqsErrorBoundTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(BqsErrorBoundTest, CompressionIsErrorBounded) {
  const auto [seed, epsilon] = GetParam();
  for (const bool jagged : {false, true}) {
    const Trajectory walk =
        jagged ? JaggedWalk(seed, 3000) : SmoothWalk(seed, 3000);
    BqsOptions options;
    options.epsilon = epsilon;
    BqsCompressor bqs(options);
    const CompressedTrajectory compressed = CompressAll(bqs, walk);
    const DeviationReport report =
        EvaluateCompression(walk, compressed, options.metric);
    EXPECT_LE(report.max_deviation, epsilon * (1.0 + 1e-9))
        << (jagged ? "jagged" : "smooth") << " seed=" << seed
        << " eps=" << epsilon;
    ASSERT_GE(compressed.size(), 2u);
    EXPECT_EQ(compressed.keys.front().index, 0u);
    EXPECT_EQ(compressed.keys.back().index, walk.size() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTolerances, BqsErrorBoundTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(2.0, 5.0, 10.0, 20.0)));

class BqsSegmentMetricTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BqsSegmentMetricTest, SegmentMetricIsErrorBounded) {
  const Trajectory walk = JaggedWalk(GetParam(), 2500);
  BqsOptions options;
  options.epsilon = 8.0;
  options.metric = DistanceMetric::kPointToSegment;
  BqsCompressor bqs(options);
  const CompressedTrajectory compressed = CompressAll(bqs, walk);
  const DeviationReport report =
      EvaluateCompression(walk, compressed, options.metric);
  EXPECT_LE(report.max_deviation, options.epsilon * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BqsSegmentMetricTest,
                         ::testing::Values(11u, 12u, 13u, 14u));

TEST(BqsCompressorTest, MatchesUnboundedGreedyReferenceExactly) {
  // BQS with exact fallback takes the same include/split decisions as the
  // sliding-window greedy with an unbounded buffer; the bound machinery
  // must only short-circuit scans, never change outcomes. This is also an
  // end-to-end validity check of the bounds on organic decision sequences.
  for (uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    for (double epsilon : {3.0, 10.0, 25.0}) {
      const Trajectory walk = JaggedWalk(seed, 2000);

      BqsOptions bqs_options;
      bqs_options.epsilon = epsilon;
      BqsCompressor bqs(bqs_options);
      const CompressedTrajectory via_bqs = CompressAll(bqs, walk);

      BufferedGreedyOptions greedy_options;
      greedy_options.epsilon = epsilon;
      greedy_options.buffer_size = 0;  // unbounded reference
      BufferedGreedy greedy(greedy_options);
      const CompressedTrajectory via_greedy = CompressAll(greedy, walk);

      ASSERT_EQ(via_bqs.size(), via_greedy.size())
          << "seed=" << seed << " eps=" << epsilon;
      for (std::size_t i = 0; i < via_bqs.size(); ++i) {
        EXPECT_EQ(via_bqs.keys[i].index, via_greedy.keys[i].index)
            << "key " << i << " seed=" << seed << " eps=" << epsilon;
      }
    }
  }
}

TEST(BqsCompressorTest, MatchesGreedyReferenceUnderSegmentMetric) {
  // Same differential as above but under the point-to-segment metric,
  // exercising the Eq. (11) upper bound and the corrected edge-distance
  // lower bound on organic decision sequences.
  for (uint64_t seed : {26u, 27u, 28u}) {
    const Trajectory walk = JaggedWalk(seed, 1500);
    BqsOptions bqs_options;
    bqs_options.epsilon = 8.0;
    bqs_options.metric = DistanceMetric::kPointToSegment;
    BqsCompressor bqs(bqs_options);
    const CompressedTrajectory via_bqs = CompressAll(bqs, walk);

    BufferedGreedyOptions greedy_options;
    greedy_options.epsilon = 8.0;
    greedy_options.metric = DistanceMetric::kPointToSegment;
    greedy_options.buffer_size = 0;
    BufferedGreedy greedy(greedy_options);
    const CompressedTrajectory via_greedy = CompressAll(greedy, walk);

    ASSERT_EQ(via_bqs.size(), via_greedy.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < via_bqs.size(); ++i) {
      EXPECT_EQ(via_bqs.keys[i].index, via_greedy.keys[i].index)
          << "key " << i << " seed=" << seed;
    }
  }
}

TEST(BqsCompressorTest, EmptyStreamYieldsNothing) {
  BqsCompressor bqs;
  std::vector<KeyPoint> keys;
  bqs.Finish(&keys);
  EXPECT_TRUE(keys.empty());
}

TEST(BqsCompressorTest, SinglePointYieldsSingleKey) {
  BqsCompressor bqs;
  std::vector<KeyPoint> keys;
  bqs.Push(TrackPoint{{1.0, 2.0}, 0.0, {}}, &keys);
  bqs.Finish(&keys);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].index, 0u);
}

TEST(BqsCompressorTest, StationaryNoiseCompressesToTwoPoints) {
  const Trajectory walk = NoisyLine(31, 500, 0.0);
  BqsOptions options;
  options.epsilon = 5.0;
  BqsCompressor bqs(options);
  const CompressedTrajectory compressed = CompressAll(bqs, walk);
  EXPECT_EQ(compressed.size(), 2u);
}

TEST(BqsCompressorTest, SubToleranceNoisyLineCompressesToTwoPoints) {
  const Trajectory walk = NoisyLine(32, 500, 1.5);
  BqsOptions options;
  options.epsilon = 5.0;
  BqsCompressor bqs(options);
  const CompressedTrajectory compressed = CompressAll(bqs, walk);
  EXPECT_EQ(compressed.size(), 2u)
      << "a line with noise < epsilon must keep only its endpoints";
}

TEST(BqsCompressorTest, AllDuplicatePointsCompressToTwo) {
  Trajectory walk(300, TrackPoint{{7.0, 7.0}, 0.0, {}});
  for (std::size_t i = 0; i < walk.size(); ++i) {
    walk[i].t = static_cast<double>(i);
  }
  BqsCompressor bqs;
  const CompressedTrajectory compressed = CompressAll(bqs, walk);
  EXPECT_EQ(compressed.size(), 2u);
}

TEST(BqsCompressorTest, StatsAccountForEveryPoint) {
  const Trajectory walk = SmoothWalk(41, 4000);
  BqsOptions options;
  options.epsilon = 10.0;
  BqsCompressor bqs(options);
  CompressAll(bqs, walk);
  const DecisionStats& stats = bqs.stats();
  EXPECT_EQ(stats.points, walk.size());
  EXPECT_GE(stats.PruningPower(), 0.0);
  EXPECT_LE(stats.PruningPower(), 1.0);
  EXPECT_GE(stats.PruningPowerInclWarmup(), 0.0);
  // On smooth data the bounds should prune the vast majority of scans.
  EXPECT_GT(stats.PruningPower(), 0.8);
}

TEST(BqsCompressorTest, ResetClearsState) {
  const Trajectory walk = SmoothWalk(42, 500);
  BqsCompressor bqs;
  const CompressedTrajectory first = CompressAll(bqs, walk);
  const CompressedTrajectory second = CompressAll(bqs, walk);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.keys[i].index, second.keys[i].index);
  }
}

TEST(BqsCompressorTest, ProbeObservesSandwichedBounds) {
  const Trajectory walk = SmoothWalk(43, 2000);
  BqsOptions options;
  options.epsilon = 8.0;
  BqsCompressor bqs(options);
  int violations = 0;
  int observations = 0;
  bqs.SetProbe([&](const internal::BoundsProbe& probe) {
    ++observations;
    if (probe.actual >= 0.0) {
      const double tol = 1e-7 * (1.0 + probe.actual);
      if (probe.lower > probe.actual + tol ||
          probe.upper < probe.actual - tol) {
        ++violations;
      }
    }
  });
  CompressAll(bqs, walk);
  EXPECT_GT(observations, 100);
  EXPECT_EQ(violations, 0);
}

TEST(BqsCompressorTest, PaperTrivialIncludeCanViolateTheBound) {
  // Documents the Algorithm-1 soundness gap the safe default closes: fly
  // out 10 m, come back next to the start, end the stream there. The
  // paper-faithful mode ends the segment at the near-start point without
  // ever validating the earlier excursion against that end.
  Trajectory walk;
  walk.push_back(TrackPoint{{0.0, 0.0}, 0.0, {}});
  walk.push_back(TrackPoint{{10.0, 0.0}, 1.0, {}});
  walk.push_back(TrackPoint{{0.1, 0.5}, 2.0, {}});

  BqsOptions paper;
  paper.epsilon = 1.0;
  paper.paper_trivial_include = true;
  paper.data_centric_rotation = false;
  BqsCompressor paper_bqs(paper);
  const CompressedTrajectory paper_out = CompressAll(paper_bqs, walk);
  const double paper_dev =
      EvaluateCompression(walk, paper_out, paper.metric).max_deviation;
  EXPECT_GT(paper_dev, paper.epsilon)
      << "expected the documented paper-mode violation on this input";

  BqsOptions safe = paper;
  safe.paper_trivial_include = false;
  BqsCompressor safe_bqs(safe);
  const CompressedTrajectory safe_out = CompressAll(safe_bqs, walk);
  const double safe_dev =
      EvaluateCompression(walk, safe_out, safe.metric).max_deviation;
  EXPECT_LE(safe_dev, safe.epsilon * (1.0 + 1e-9));
}

TEST(BqsCompressorTest, RotationTogglePreservesTheBound) {
  for (const bool rotate : {false, true}) {
    const Trajectory walk = JaggedWalk(55, 2000);
    BqsOptions options;
    options.epsilon = 6.0;
    options.data_centric_rotation = rotate;
    BqsCompressor bqs(options);
    const CompressedTrajectory compressed = CompressAll(bqs, walk);
    const DeviationReport report =
        EvaluateCompression(walk, compressed, options.metric);
    EXPECT_LE(report.max_deviation, options.epsilon * (1.0 + 1e-9))
        << "rotation=" << rotate;
  }
}

TEST(BqsCompressorTest, KeyIndicesStrictlyIncrease) {
  const Trajectory walk = JaggedWalk(60, 1500);
  BqsCompressor bqs(BqsOptions{.epsilon = 4.0});
  const CompressedTrajectory compressed = CompressAll(bqs, walk);
  for (std::size_t i = 1; i < compressed.size(); ++i) {
    EXPECT_LT(compressed.keys[i - 1].index, compressed.keys[i].index);
  }
}

void ExpectByteIdenticalKeys(const CompressedTrajectory& a,
                             const CompressedTrajectory& b,
                             const char* context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.keys[i].index, b.keys[i].index) << context << " key " << i;
    // TrackPoint::operator== compares every double exactly, so this is a
    // byte-for-byte check (all emitted points are original stream points).
    ASSERT_TRUE(a.keys[i].point == b.keys[i].point) << context << " key "
                                                    << i;
  }
}

TEST(BqsCompressorTest, HullResolverIsByteIdenticalToBruteForce) {
  // The tentpole guarantee: the Melkman-hull exact path takes exactly the
  // decisions of the seed's whole-buffer rescan, over random_walk and
  // von Mises streams, both metrics, a range of tolerances.
  for (uint64_t seed : {71u, 72u, 73u}) {
    const Trajectory walks[] = {SmoothWalk(seed, 2500),
                                JaggedWalk(seed, 2500),
                                testing_util::VonMisesWalk(seed, 2500, 2.0)};
    for (const Trajectory& walk : walks) {
      for (double epsilon : {2.0, 5.0, 10.0, 25.0}) {
        for (DistanceMetric metric : {DistanceMetric::kPointToLine,
                                      DistanceMetric::kPointToSegment}) {
          BqsOptions hull_options;
          hull_options.epsilon = epsilon;
          hull_options.metric = metric;
          hull_options.exact_resolver = ExactResolver::kHull;
          BqsOptions brute_options = hull_options;
          brute_options.exact_resolver = ExactResolver::kBruteForce;

          BqsCompressor via_hull(hull_options);
          BqsCompressor via_brute(brute_options);
          const CompressedTrajectory hull_out = CompressAll(via_hull, walk);
          const CompressedTrajectory brute_out = CompressAll(via_brute, walk);
          ExpectByteIdenticalKeys(hull_out, brute_out, "resolver diff");

          // Same decisions imply the same decision mix.
          EXPECT_EQ(via_hull.stats().exact_computations,
                    via_brute.stats().exact_computations);
          EXPECT_EQ(via_hull.stats().segments, via_brute.stats().segments);
          EXPECT_EQ(via_hull.stats().upper_bound_includes,
                    via_brute.stats().upper_bound_includes);
          EXPECT_EQ(via_hull.stats().lower_bound_splits,
                    via_brute.stats().lower_bound_splits);
          // And the hull must never scan more than the buffer would.
          EXPECT_LE(via_hull.stats().exact_points_scanned,
                    via_brute.stats().exact_points_scanned);
        }
      }
    }
  }
}

TEST(BqsCompressorTest, FastKernelIsByteIdenticalToReferenceCorpus) {
  // ISSUE 4 acceptance: the transcendental-free kernel takes exactly the
  // decisions of the seed's atan2/sqrt path over the full fuzz corpus —
  // every stream family x metric x rotation x resolver x bounds mode x
  // tolerance. Any guard-band push re-runs the reference composition, so
  // a divergence here means a genuine kernel bug.
  int configs = 0;
  for (uint64_t seed : {171u, 172u, 173u}) {
    const Trajectory walks[] = {SmoothWalk(seed, 1200), JaggedWalk(seed, 1200),
                                testing_util::VonMisesWalk(seed, 1200, 2.0)};
    for (const Trajectory& walk : walks) {
      for (double epsilon : {2.5, 10.0}) {
        for (DistanceMetric metric : {DistanceMetric::kPointToLine,
                                      DistanceMetric::kPointToSegment}) {
          for (bool rotate : {false, true}) {
            for (ExactResolver resolver :
                 {ExactResolver::kAdaptive, ExactResolver::kHull,
                  ExactResolver::kBruteForce}) {
              for (BoundsMode mode :
                   {BoundsMode::kSound, BoundsMode::kPaperEq8}) {
                BqsOptions fast_options;
                fast_options.epsilon = epsilon;
                fast_options.metric = metric;
                fast_options.data_centric_rotation = rotate;
                fast_options.exact_resolver = resolver;
                fast_options.bounds_mode = mode;
                fast_options.bound_kernel = BoundKernel::kFast;
                BqsOptions reference_options = fast_options;
                reference_options.bound_kernel = BoundKernel::kReference;

                BqsCompressor fast(fast_options);
                BqsCompressor reference(reference_options);
                const CompressedTrajectory fast_out =
                    CompressAll(fast, walk);
                const CompressedTrajectory reference_out =
                    CompressAll(reference, walk);
                ++configs;
                SCOPED_TRACE(::testing::Message()
                             << "seed=" << seed << " eps=" << epsilon
                             << " metric=" << static_cast<int>(metric)
                             << " rotate=" << rotate
                             << " resolver=" << static_cast<int>(resolver)
                             << " mode=" << static_cast<int>(mode));
                ExpectByteIdenticalKeys(fast_out, reference_out,
                                        "kernel diff");
                EXPECT_EQ(fast.stats().segments,
                          reference.stats().segments);
                EXPECT_EQ(fast.stats().upper_bound_includes,
                          reference.stats().upper_bound_includes);
                EXPECT_EQ(fast.stats().lower_bound_splits,
                          reference.stats().lower_bound_splits);
                EXPECT_EQ(fast.stats().exact_computations,
                          reference.stats().exact_computations);
                EXPECT_EQ(reference.stats().kernel_fallbacks, 0u);
              }
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(configs, 3 * 3 * 2 * 2 * 2 * 3 * 2);  // 432 kernel pairs.
}

TEST(BqsCompressorTest, FastKernelHandlesStationaryRuns) {
  // Regression test for the near-axis sliver: data-centric rotation of a
  // stationary run (duplicate out-of-epsilon fixes) lands rel vectors
  // within sub-ulp of the rotated +x axis, where sign tests and the
  // atan2+fmod formula genuinely disagree — the kernel must defer those
  // points to the reference semantics to stay byte-identical.
  Trajectory walk;
  double t = 0.0;
  auto emit = [&](double x, double y, int repeat) {
    for (int i = 0; i < repeat; ++i) {
      walk.push_back(TrackPoint{{x, y}, t, {}});
      t += 1.0;
    }
  };
  emit(0.0, 0.0, 1);
  emit(27.7, -1.9, 18);  // stop: identical out-of-epsilon fixes.
  emit(41.3, -13.6, 1);
  emit(55.0, -25.2, 6);  // second stop.
  emit(68.2, -37.5, 1);
  emit(68.2, -37.5, 9);

  for (bool exactly_collinear : {false, true}) {
    Trajectory stream = walk;
    if (exactly_collinear) {
      // A perfectly straight run: rotation estimates the exact direction,
      // rotated y-residuals collapse to rounding level.
      stream.clear();
      for (int i = 0; i < 40; ++i) {
        stream.push_back(TrackPoint{{3.0 * i, 4.0 * i}, double(i), {}});
      }
    }
    BqsOptions fast_options;
    fast_options.epsilon = 10.0;
    BqsOptions reference_options = fast_options;
    reference_options.bound_kernel = BoundKernel::kReference;
    BqsCompressor fast(fast_options);
    BqsCompressor reference(reference_options);
    const CompressedTrajectory fast_out = CompressAll(fast, stream);
    const CompressedTrajectory reference_out = CompressAll(reference, stream);
    ExpectByteIdenticalKeys(fast_out, reference_out, "stationary run");
  }
}

TEST(BqsCompressorTest, AdaptiveResolverIsByteIdenticalToBothPureModes) {
  // The adaptive resolver must be a pure scheduling decision: outputs and
  // decision mixes identical to kHull and kBruteForce at any threshold.
  for (uint64_t seed : {181u, 182u}) {
    const Trajectory walk = JaggedWalk(seed, 2500);
    for (double epsilon : {3.0, 10.0}) {
      for (int threshold : {1, 4, 64, 1024}) {
        BqsOptions adaptive_options;
        adaptive_options.epsilon = epsilon;
        adaptive_options.exact_resolver = ExactResolver::kAdaptive;
        adaptive_options.adaptive_resolver_threshold = threshold;
        BqsOptions hull_options = adaptive_options;
        hull_options.exact_resolver = ExactResolver::kHull;
        BqsOptions brute_options = adaptive_options;
        brute_options.exact_resolver = ExactResolver::kBruteForce;

        BqsCompressor adaptive(adaptive_options);
        BqsCompressor hull(hull_options);
        BqsCompressor brute(brute_options);
        const CompressedTrajectory adaptive_out = CompressAll(adaptive, walk);
        const CompressedTrajectory hull_out = CompressAll(hull, walk);
        const CompressedTrajectory brute_out = CompressAll(brute, walk);
        SCOPED_TRACE(::testing::Message() << "seed=" << seed << " eps="
                                          << epsilon << " thr=" << threshold);
        ExpectByteIdenticalKeys(adaptive_out, hull_out, "adaptive vs hull");
        ExpectByteIdenticalKeys(adaptive_out, brute_out, "adaptive vs brute");
        EXPECT_EQ(adaptive.stats().exact_computations,
                  brute.stats().exact_computations);
        EXPECT_EQ(adaptive.stats().segments, brute.stats().segments);
      }
    }
  }
}

TEST(BqsCompressorTest, AdaptiveResolverMigratesAtThreshold) {
  // Drive one long split-free segment (a straight run with sub-epsilon
  // jitter) and watch the flat buffer hand over to the hull exactly at
  // the configured threshold.
  BqsOptions options;
  options.epsilon = 5.0;
  options.data_centric_rotation = false;
  options.exact_resolver = ExactResolver::kAdaptive;
  options.adaptive_resolver_threshold = 32;
  BqsCompressor bqs(options);
  std::vector<KeyPoint> keys;
  Rng rng(55);
  bool seen_buffer_phase = false;
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double jitter = rng.Uniform(-2.0, 2.0);
    bqs.Push(TrackPoint{{10.0 * i, jitter}, t, {}}, &keys);
    t += 1.0;
    if (!bqs.engine().hull_active()) {
      seen_buffer_phase = true;
      EXPECT_LT(bqs.engine().buffer_size(), 32u);
    } else {
      EXPECT_EQ(bqs.engine().buffer_size(), 0u)
          << "buffer must drain into the hull at the threshold";
    }
  }
  EXPECT_TRUE(seen_buffer_phase);
  EXPECT_TRUE(bqs.engine().hull_active());
}

TEST(BqsCompressorTest, HullProbeActualMatchesBruteForce) {
  // The BoundsProbe `actual` field is resolver-provided; both resolvers
  // must report the same exact deviation at every assessed point.
  const Trajectory walk = JaggedWalk(81, 2000);
  struct Obs {
    uint64_t index;
    double actual;
  };
  auto run = [&](ExactResolver resolver) {
    BqsOptions options;
    options.epsilon = 6.0;
    options.exact_resolver = resolver;
    BqsCompressor bqs(options);
    std::vector<Obs> observations;
    bqs.SetProbe([&](const internal::BoundsProbe& probe) {
      observations.push_back(Obs{probe.index, probe.actual});
    });
    CompressAll(bqs, walk);
    return observations;
  };
  const std::vector<Obs> via_hull = run(ExactResolver::kHull);
  const std::vector<Obs> via_brute = run(ExactResolver::kBruteForce);
  ASSERT_EQ(via_hull.size(), via_brute.size());
  ASSERT_GT(via_hull.size(), 100u);
  for (std::size_t i = 0; i < via_hull.size(); ++i) {
    ASSERT_EQ(via_hull[i].index, via_brute[i].index) << "probe " << i;
    EXPECT_NEAR(via_hull[i].actual, via_brute[i].actual,
                1e-9 * (1.0 + via_brute[i].actual))
        << "probe " << i;
  }
}

TEST(BqsCompressorTest, PushBatchMatchesPushExactly) {
  const Trajectory walk = JaggedWalk(91, 3000);
  BqsOptions options;
  options.epsilon = 5.0;

  BqsCompressor one_by_one(options);
  CompressedTrajectory single;
  one_by_one.Reset();
  for (const TrackPoint& pt : walk) one_by_one.Push(pt, &single.keys);
  one_by_one.Finish(&single.keys);

  BqsCompressor batched(options);
  const CompressedTrajectory whole = CompressAll(batched, walk);
  ExpectByteIdenticalKeys(single, whole, "whole batch");
  EXPECT_EQ(one_by_one.stats().points, batched.stats().points);
  EXPECT_EQ(one_by_one.stats().exact_computations,
            batched.stats().exact_computations);
  EXPECT_EQ(one_by_one.stats().segments, batched.stats().segments);

  // Chunked batches (including empty ones) must behave identically too.
  BqsCompressor chunked(options);
  chunked.Reset();
  CompressedTrajectory chunks;
  const std::span<const TrackPoint> span(walk);
  std::size_t at = 0;
  std::size_t step = 1;
  while (at < span.size()) {
    const std::size_t take = std::min(step, span.size() - at);
    chunked.PushBatch(span.subspan(at, take), &chunks.keys);
    chunked.PushBatch(span.subspan(at + take, 0), &chunks.keys);
    at += take;
    step = step * 2 + 1;
  }
  chunked.Finish(&chunks.keys);
  ExpectByteIdenticalKeys(single, chunks, "chunked batch");
}

TEST(BqsCompressorTest, InvalidOptionsAreReported) {
  BqsOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.epsilon = 5.0;
  options.rotation_warmup = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.rotation_warmup = BqsOptions::kMaxRotationWarmup + 1;
  EXPECT_FALSE(options.Validate().ok());
  options.rotation_warmup = 5;
  EXPECT_TRUE(options.Validate().ok());
}

}  // namespace
}  // namespace bqs
