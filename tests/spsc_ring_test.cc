// SpscRing: the lock-light bounded queue behind FleetEngine's shard
// handoff. Single-threaded FIFO/wrap behaviour, then the two-thread
// contracts the engine leans on: backpressure blocking with wakeup,
// stop-while-full releasing a blocked producer, drain-after-stop, and the
// edge-triggered wake counters.
#include "service/spsc_ring.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace bqs {
namespace {

TEST(SpscRingTest, FifoThroughManyWraps) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  // Interleave pushes and pops so the cursors wrap the 4-slot array many
  // times; order must survive every wrap.
  int next_push = 0;
  int next_pop = 0;
  while (next_pop < 1000) {
    while (next_push < 1000 && next_push - next_pop < 3 &&
           ring.TryPush(next_push)) {
      ++next_push;
    }
    ASSERT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_FALSE(ring.TryPop(out));  // drained
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingTest, TryPushFailsOnlyWhenFull) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_FALSE(ring.TryPush(3));  // full
  int out = 0;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.TryPush(3));  // space again
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 3);
}

TEST(SpscRingTest, CapacityClampedToAtLeastOne) {
  SpscRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_TRUE(ring.TryPush(7));
  EXPECT_FALSE(ring.TryPush(8));
  int out = 0;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 7);
}

TEST(SpscRingTest, BackpressureBlocksProducerUntilConsumerPops) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.TryPush(0));
  ASSERT_TRUE(ring.TryPush(1));

  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 2; i < 6; ++i) {
      ASSERT_TRUE(ring.Push(i));  // blocks while full
      pushed.fetch_add(1);
    }
  });

  // The producer must block: it cannot make progress past the full ring.
  while (ring.producer_waits() == 0) std::this_thread::yield();
  EXPECT_EQ(pushed.load(), 0);

  // Draining releases it; everything arrives in order.
  for (int expect = 0; expect < 6; ++expect) {
    int out = -1;
    ASSERT_TRUE(ring.Pop(out));
    EXPECT_EQ(out, expect);
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 4);
  EXPECT_GE(ring.producer_waits(), 1u);
}

TEST(SpscRingTest, StopWhileFullReleasesBlockedProducerWithFalse) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.TryPush(42));

  std::atomic<bool> returned{false};
  std::atomic<bool> result{true};
  std::thread producer([&] {
    result.store(ring.Push(43));  // blocks: ring is full
    returned.store(true);
  });
  while (ring.producer_waits() == 0) std::this_thread::yield();
  EXPECT_FALSE(returned.load());

  ring.Stop();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(result.load());  // the blocked push was refused

  // The item enqueued before the stop still drains...
  int out = 0;
  ASSERT_TRUE(ring.Pop(out));
  EXPECT_EQ(out, 42);
  // ...then Pop reports stopped-and-empty, and pushes are refused.
  EXPECT_FALSE(ring.Pop(out));
  EXPECT_FALSE(ring.Push(44));
  EXPECT_FALSE(ring.TryPush(44));
}

TEST(SpscRingTest, StopWakesConsumerBlockedOnEmpty) {
  SpscRing<int> ring(4);
  std::atomic<bool> returned{false};
  std::atomic<bool> result{true};
  std::thread consumer([&] {
    int out = 0;
    result.store(ring.Pop(out));  // blocks: ring is empty
    returned.store(true);
  });
  while (ring.consumer_waits() == 0) std::this_thread::yield();
  EXPECT_FALSE(returned.load());
  ring.Stop();
  consumer.join();
  EXPECT_FALSE(result.load());
}

TEST(SpscRingTest, BlockedConsumerWakesOnPush) {
  SpscRing<int> ring(4);
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    int out = 0;
    ASSERT_TRUE(ring.Pop(out));
    got.store(out);
  });
  while (ring.consumer_waits() == 0) std::this_thread::yield();
  ASSERT_TRUE(ring.Push(99));
  consumer.join();
  EXPECT_EQ(got.load(), 99);
  EXPECT_GE(ring.consumer_waits(), 1u);
}

TEST(SpscRingTest, WakesAreEdgeTriggeredNotPerEnqueue) {
  // A consumer that never observes an empty ring never sleeps, so a
  // stream of pushes costs zero consumer waits — the property that makes
  // the ring cheaper than the notify-per-enqueue queue it replaced.
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ring.TryPush(i));
  int out = 0;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ring.TryPop(out));
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.Push(round));
    ASSERT_TRUE(ring.Pop(out));
    EXPECT_EQ(out, round);
  }
  EXPECT_EQ(ring.consumer_waits(), 0u);
  EXPECT_EQ(ring.producer_waits(), 0u);
}

TEST(SpscRingTest, PushUntilSucceedsImmediatelyWithSpace) {
  SpscRing<int> ring(2);
  // An already-expired deadline is irrelevant when a slot is free: the
  // fast path never consults the clock.
  const auto past = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(10);
  EXPECT_TRUE(ring.PushUntil(1, past));
  EXPECT_EQ(ring.producer_waits(), 0u);
  int out = 0;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 1);
}

TEST(SpscRingTest, PushUntilTimesOutOnFullRing) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.TryPush(7));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(5);
  // No consumer: the bounded wait must give up at the deadline — this is
  // the latency-budget edge the engine's shed path is built on.
  EXPECT_FALSE(ring.PushUntil(8, deadline));
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
  EXPECT_GE(ring.producer_waits(), 1u);
  // The refused item was dropped; the ring still drains cleanly.
  int out = 0;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 7);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingTest, PushUntilSucceedsWhenConsumerPopsInTime) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.TryPush(1));
  std::thread consumer([&] {
    // Wait until the producer is actually parked, then free the slot.
    while (ring.producer_waits() == 0) std::this_thread::yield();
    int out = 0;
    ASSERT_TRUE(ring.TryPop(out));
  });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  EXPECT_TRUE(ring.PushUntil(2, deadline));  // woken well before deadline
  consumer.join();
  int out = 0;
  ASSERT_TRUE(ring.TryPop(out));
  EXPECT_EQ(out, 2);
}

TEST(SpscRingTest, PushUntilRefusedAfterStop) {
  SpscRing<int> ring(1);
  ASSERT_TRUE(ring.TryPush(1));
  ring.Stop();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  // Stop beats the deadline: the push returns false immediately.
  EXPECT_FALSE(ring.PushUntil(2, deadline));
}

TEST(SpscRingTest, TwoThreadStress) {
  // 100k items through a tiny ring from a real producer thread: exercises
  // wrap, both sleep paths and both wake paths under scheduler noise.
  // (This suite runs under the TSan CI job, which is the real assertion.)
  SpscRing<uint64_t> ring(3);
  constexpr uint64_t kItems = 100000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(ring.Push(i));
  });
  uint64_t out = 0;
  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_TRUE(ring.Pop(out));
    ASSERT_EQ(out, i);
  }
  producer.join();
  EXPECT_EQ(ring.size(), 0u);
}

}  // namespace
}  // namespace bqs
