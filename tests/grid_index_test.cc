// Uniform grid spatial index, validated against brute force.
#include "storage/grid_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(GridIndexTest, InsertAndQueryBasics) {
  GridIndex index(10.0);
  index.Insert(1, {0, 0});
  index.Insert(2, {5, 5});
  index.Insert(3, {100, 100});
  EXPECT_EQ(index.size(), 3u);

  auto hits = index.Query({0, 0}, 8.0);
  std::sort(hits.begin(), hits.end());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
}

TEST(GridIndexTest, RemoveWorksAndReportsAbsence) {
  GridIndex index(10.0);
  index.Insert(1, {3, 3});
  EXPECT_TRUE(index.Remove(1, {3, 3}));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.Remove(1, {3, 3}));
  EXPECT_FALSE(index.Remove(99, {50, 50}));
  EXPECT_TRUE(index.Query({3, 3}, 5.0).empty());
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex index(25.0);
  index.Insert(1, {-100, -100});
  index.Insert(2, {-101, -99});
  const auto hits = index.Query({-100, -100}, 3.0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(GridIndexTest, MatchesBruteForce) {
  Rng rng(55);
  GridIndex index(50.0);
  std::vector<std::pair<uint64_t, Vec2>> all;
  for (uint64_t id = 0; id < 500; ++id) {
    const Vec2 pos{rng.Uniform(-1000, 1000), rng.Uniform(-1000, 1000)};
    index.Insert(id, pos);
    all.emplace_back(id, pos);
  }
  for (int q = 0; q < 100; ++q) {
    const Vec2 center{rng.Uniform(-1000, 1000), rng.Uniform(-1000, 1000)};
    const double radius = rng.Uniform(1.0, 300.0);
    auto hits = index.Query(center, radius);
    std::sort(hits.begin(), hits.end());
    std::vector<uint64_t> expected;
    for (const auto& [id, pos] : all) {
      if (DistanceSq(pos, center) <= radius * radius) expected.push_back(id);
    }
    EXPECT_EQ(hits, expected);
  }
}

TEST(GridIndexTest, RemovalKeepsQueriesConsistent) {
  Rng rng(56);
  GridIndex index(20.0);
  std::vector<std::pair<uint64_t, Vec2>> alive;
  for (uint64_t id = 0; id < 200; ++id) {
    const Vec2 pos{rng.Uniform(0, 500), rng.Uniform(0, 500)};
    index.Insert(id, pos);
    alive.emplace_back(id, pos);
  }
  // Remove every third entry.
  for (std::size_t i = alive.size(); i-- > 0;) {
    if (i % 3 == 0) {
      EXPECT_TRUE(index.Remove(alive[i].first, alive[i].second));
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  EXPECT_EQ(index.size(), alive.size());
  auto hits = index.Query({250, 250}, 400.0);
  std::sort(hits.begin(), hits.end());
  std::vector<uint64_t> expected;
  for (const auto& [id, pos] : alive) {
    if (DistanceSq(pos, {250, 250}) <= 400.0 * 400.0) {
      expected.push_back(id);
    }
  }
  EXPECT_EQ(hits, expected);
}

TEST(GridIndexTest, ClearEmptiesEverything) {
  GridIndex index(10.0);
  index.Insert(1, {1, 1});
  index.Insert(2, {2, 2});
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Query({1, 1}, 100.0).empty());
}

}  // namespace
}  // namespace bqs
