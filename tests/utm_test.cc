// UTM projection: round-trip accuracy and projection invariants that hold
// independently of any reference implementation.
#include "geo/utm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geodesy.h"

namespace bqs {
namespace {

TEST(UtmTest, ZoneComputation) {
  EXPECT_EQ(UtmZoneFor(0.0, -177.0), 1);
  EXPECT_EQ(UtmZoneFor(0.0, 177.0), 60);
  EXPECT_EQ(UtmZoneFor(-27.47, 153.03), 56);  // Brisbane
  EXPECT_EQ(UtmZoneFor(40.7, -74.0), 18);     // New York
  EXPECT_EQ(UtmZoneFor(0.0, 0.0), 31);
}

TEST(UtmTest, NorwaySvalbardExceptions) {
  EXPECT_EQ(UtmZoneFor(60.0, 4.0), 32);   // Norway: 32V extended
  EXPECT_EQ(UtmZoneFor(55.0, 4.0), 31);   // below 56N: standard
  EXPECT_EQ(UtmZoneFor(75.0, 8.0), 31);   // Svalbard bands
  EXPECT_EQ(UtmZoneFor(75.0, 10.0), 33);
  EXPECT_EQ(UtmZoneFor(75.0, 25.0), 35);
  EXPECT_EQ(UtmZoneFor(75.0, 35.0), 37);
}

TEST(UtmTest, CentralMeridian) {
  EXPECT_DOUBLE_EQ(UtmCentralMeridianDeg(31), 3.0);
  EXPECT_DOUBLE_EQ(UtmCentralMeridianDeg(56), 153.0);
  EXPECT_DOUBLE_EQ(UtmCentralMeridianDeg(1), -177.0);
}

TEST(UtmTest, CentralMeridianMapsToFalseEasting) {
  const auto utm = LatLonToUtm({45.0, UtmCentralMeridianDeg(33)});
  ASSERT_TRUE(utm.ok());
  EXPECT_NEAR(utm.value().easting, 500000.0, 1e-6);
}

TEST(UtmTest, EquatorMapsToZeroNorthing) {
  const auto utm = LatLonToUtm({0.0, 9.0});
  ASSERT_TRUE(utm.ok());
  EXPECT_NEAR(utm.value().northing, 0.0, 1e-6);
  EXPECT_TRUE(utm.value().north);
}

TEST(UtmTest, SouthernHemisphereFalseNorthing) {
  const auto utm = LatLonToUtm({-27.47, 153.03});
  ASSERT_TRUE(utm.ok());
  EXPECT_FALSE(utm.value().north);
  // Southern northings are below 10,000 km and positive.
  EXPECT_GT(utm.value().northing, 6.0e6);
  EXPECT_LT(utm.value().northing, 10.0e6);
}

TEST(UtmTest, ScaleFactorOnCentralMeridianIsK0) {
  // A small northward step on the central meridian must scale by 0.9996.
  const double lon = UtmCentralMeridianDeg(56);
  const auto a = LatLonToUtm({-27.0, lon});
  const auto b = LatLonToUtm({-27.001, lon});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double grid = std::fabs(a.value().northing - b.value().northing);
  const double true_dist = HaversineMeters({-27.0, lon}, {-27.001, lon});
  // Haversine uses the spherical earth, so allow a few parts in 1e3.
  EXPECT_NEAR(grid / true_dist, 0.9996, 0.004);
}

TEST(UtmTest, RoundTripSubMillimetre) {
  Rng rng(51);
  for (int i = 0; i < 2000; ++i) {
    LatLon pos;
    pos.lat_deg = rng.Uniform(-80.0, 80.0);
    pos.lon_deg = rng.Uniform(-180.0, 180.0);
    const auto utm = LatLonToUtm(pos);
    ASSERT_TRUE(utm.ok());
    const auto back = UtmToLatLon(utm.value());
    ASSERT_TRUE(back.ok());
    const double err = HaversineMeters(pos, back.value());
    EXPECT_LT(err, 1e-3) << "lat=" << pos.lat_deg << " lon=" << pos.lon_deg;
  }
}

TEST(UtmTest, ExplicitZoneKeepsPlaneContinuous) {
  // Project two points straddling a zone boundary into one zone: eastings
  // must be monotone (no seam).
  const auto west = LatLonToUtmZone({10.0, 11.9}, 32, true);
  const auto east = LatLonToUtmZone({10.0, 12.1}, 32, true);
  ASSERT_TRUE(west.ok());
  ASSERT_TRUE(east.ok());
  EXPECT_LT(west.value().easting, east.value().easting);
  const double dist = east.value().easting - west.value().easting;
  const double true_dist =
      HaversineMeters({10.0, 11.9}, {10.0, 12.1});
  EXPECT_NEAR(dist / true_dist, 1.0, 0.01);
}

TEST(UtmTest, RejectsOutOfRange) {
  EXPECT_FALSE(LatLonToUtm({85.5, 0.0}).ok());
  EXPECT_FALSE(LatLonToUtm({-86.0, 0.0}).ok());
  EXPECT_FALSE(LatLonToUtm({0.0, 181.0}).ok());
  EXPECT_FALSE(LatLonToUtmZone({0.0, 0.0}, 0, true).ok());
  EXPECT_FALSE(LatLonToUtmZone({0.0, 0.0}, 61, true).ok());
  UtmCoord bad;
  bad.zone = 99;
  EXPECT_FALSE(UtmToLatLon(bad).ok());
}

TEST(UtmTest, DistancePreservationWithinZone) {
  // Projected distances should match geodesic distances to ~0.1% within a
  // zone (UTM distortion bound).
  Rng rng(52);
  for (int i = 0; i < 200; ++i) {
    const double lat = rng.Uniform(-60.0, 60.0);
    const double lon0 = UtmCentralMeridianDeg(56);
    const double lon = lon0 + rng.Uniform(-2.5, 2.5);
    const LatLon a{lat, lon};
    const LatLon b{lat + rng.Uniform(-0.05, 0.05),
                   lon + rng.Uniform(-0.05, 0.05)};
    const auto ua = LatLonToUtmZone(a, 56, lat < 0);
    const auto ub = LatLonToUtmZone(b, 56, lat < 0);
    ASSERT_TRUE(ua.ok());
    ASSERT_TRUE(ub.ok());
    const double projected = Distance(ua.value().xy(), ub.value().xy());
    const double geodesic = HaversineMeters(a, b);
    if (geodesic < 10.0) continue;
    // Budget: UTM scale distortion (<= ~0.1% within the zone) plus the
    // spherical-vs-ellipsoidal error of the haversine reference (~0.5%).
    EXPECT_NEAR(projected / geodesic, 1.0, 0.007);
  }
}

}  // namespace
}  // namespace bqs
