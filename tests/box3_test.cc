// Box3: the 3-D bounding prism.
#include "geometry/box3.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(Box3Test, DefaultIsEmpty) {
  Box3 box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
}

TEST(Box3Test, ExtendAndContain) {
  Box3 box;
  box.Extend({1, 2, 3});
  box.Extend({-1, 5, 0});
  EXPECT_EQ(box.min(), (Vec3{-1, 2, 0}));
  EXPECT_EQ(box.max(), (Vec3{1, 5, 3}));
  EXPECT_TRUE(box.Contains({0, 3, 1}));
  EXPECT_FALSE(box.Contains({0, 1.9, 1}));
  EXPECT_DOUBLE_EQ(box.Volume(), 2.0 * 3.0 * 3.0);
  EXPECT_EQ(box.Center(), (Vec3{0, 3.5, 1.5}));
}

TEST(Box3Test, CornersBitConvention) {
  const Box3 box({0, 0, 0}, {1, 2, 3});
  const auto c = box.Corners();
  EXPECT_EQ(c[0], (Vec3{0, 0, 0}));
  EXPECT_EQ(c[1], (Vec3{1, 0, 0}));
  EXPECT_EQ(c[2], (Vec3{0, 2, 0}));
  EXPECT_EQ(c[4], (Vec3{0, 0, 3}));
  EXPECT_EQ(c[7], (Vec3{1, 2, 3}));
}

TEST(Box3Test, FacesCoverAllCorners) {
  const Box3 box({-1, -2, -3}, {4, 5, 6});
  int corner_hits = 0;
  for (int f = 0; f < 6; ++f) {
    const auto face = box.Face(f);
    for (const Vec3& v : face) {
      EXPECT_TRUE(box.Contains(v));
      for (const Vec3& c : box.Corners()) {
        if (v == c) ++corner_hits;
      }
    }
  }
  // 6 faces x 4 vertices, every vertex is a box corner.
  EXPECT_EQ(corner_hits, 24);
}

TEST(Box3Test, EachCornerOnThreeFaces) {
  const Box3 box({0, 0, 0}, {1, 1, 1});
  for (const Vec3& c : box.Corners()) {
    int on = 0;
    for (int f = 0; f < 6; ++f) {
      for (const Vec3& v : box.Face(f)) {
        if (v == c) ++on;
      }
    }
    EXPECT_EQ(on, 3);
  }
}

TEST(Box3Test, RandomPointsStayContained) {
  Rng rng(13);
  Box3 box;
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.Uniform(-100, 100), rng.Uniform(-100, 100),
                 rng.Uniform(-100, 100)};
    box.Extend(p);
    EXPECT_TRUE(box.Contains(p));
  }
}

}  // namespace
}  // namespace bqs
