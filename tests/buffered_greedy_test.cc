// Buffered Greedy Deviation (sliding window): bound, buffer-cap overhead.
#include "baselines/buffered_greedy.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

using testing_util::JaggedWalk;
using testing_util::NoisyLine;

TEST(BufferedGreedyTest, ErrorBounded) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (double eps : {3.0, 10.0}) {
      const Trajectory walk = JaggedWalk(seed, 2000);
      BufferedGreedyOptions options;
      options.epsilon = eps;
      options.buffer_size = 32;
      BufferedGreedy bgd(options);
      const CompressedTrajectory c = CompressAll(bgd, walk);
      const DeviationReport report =
          EvaluateCompression(walk, c, DistanceMetric::kPointToLine);
      EXPECT_LE(report.max_deviation, eps * (1.0 + 1e-9));
    }
  }
}

TEST(BufferedGreedyTest, UnboundedBufferOnStraightLineKeepsTwo) {
  const Trajectory walk = NoisyLine(2, 400, 0.5);
  BufferedGreedyOptions options;
  options.epsilon = 5.0;
  options.buffer_size = 0;  // unbounded
  BufferedGreedy bgd(options);
  EXPECT_EQ(CompressAll(bgd, walk).size(), 2u);
}

TEST(BufferedGreedyTest, BufferCapForcesExtraKeys) {
  const Trajectory walk = NoisyLine(3, 400, 0.5);
  BufferedGreedyOptions options;
  options.epsilon = 5.0;
  options.buffer_size = 32;
  BufferedGreedy bgd(options);
  const std::size_t n = CompressAll(bgd, walk).size();
  // Roughly one forced key every 32 points.
  EXPECT_GE(n, 400u / 32u);
  EXPECT_LE(n, 400u / 32u + 3u);
}

TEST(BufferedGreedyTest, LargerBuffersCompressBetter) {
  const Trajectory walk = JaggedWalk(4, 3000);
  std::size_t prev = SIZE_MAX;
  for (std::size_t buffer : {16u, 64u, 256u}) {
    BufferedGreedyOptions options;
    options.epsilon = 10.0;
    options.buffer_size = buffer;
    BufferedGreedy bgd(options);
    const std::size_t n = CompressAll(bgd, walk).size();
    EXPECT_LE(n, prev);
    prev = n;
  }
}

TEST(BufferedGreedyTest, ScanCountMatchesComplexityModel) {
  // One full scan per pushed point plus one per re-processed split point.
  const Trajectory walk = JaggedWalk(5, 1000);
  BufferedGreedyOptions options;
  options.epsilon = 5.0;
  options.buffer_size = 0;
  BufferedGreedy bgd(options);
  const CompressedTrajectory c = CompressAll(bgd, walk);
  const uint64_t splits = c.size() - 2;
  EXPECT_EQ(bgd.deviation_scans(), (walk.size() - 1) + splits);
}

TEST(BufferedGreedyTest, SegmentMetricBounded) {
  const Trajectory walk = JaggedWalk(6, 1500);
  BufferedGreedyOptions options;
  options.epsilon = 7.0;
  options.metric = DistanceMetric::kPointToSegment;
  options.buffer_size = 0;
  BufferedGreedy bgd(options);
  const CompressedTrajectory c = CompressAll(bgd, walk);
  const DeviationReport report =
      EvaluateCompression(walk, c, DistanceMetric::kPointToSegment);
  EXPECT_LE(report.max_deviation, 7.0 * (1.0 + 1e-9));
}

TEST(BufferedGreedyTest, EdgeCases) {
  BufferedGreedy bgd(BufferedGreedyOptions{});
  std::vector<KeyPoint> keys;
  bgd.Finish(&keys);
  EXPECT_TRUE(keys.empty());
  bgd.Reset();
  bgd.Push(TrackPoint{{1, 1}, 0, {}}, &keys);
  bgd.Finish(&keys);
  ASSERT_EQ(keys.size(), 1u);
}

}  // namespace
}  // namespace bqs
