// OctantBound invariants: the canonical reflection, the wedge half-spaces,
// and — critically — that the clipped hull contains every added point.
#include "core/octant_bound.h"

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"
#include "geometry/angle.h"
#include "geometry/polyhedron.h"

namespace bqs {
namespace {

Vec3 RandomPointInOctant(Rng& rng, int octant, double lo, double hi) {
  Vec3 p{rng.Uniform(lo, hi), rng.Uniform(lo, hi), rng.Uniform(lo, hi)};
  if (octant & 1) p.x = -p.x;
  if (octant & 2) p.y = -p.y;
  if (octant & 4) p.z = -p.z;
  return p;
}

TEST(OctantBoundTest, FlipIsAnInvolutionIntoTheCanonicalOctant) {
  Rng rng(3);
  for (int octant = 0; octant < 8; ++octant) {
    OctantBound ob(octant);
    for (int i = 0; i < 50; ++i) {
      const Vec3 p = RandomPointInOctant(rng, octant, 0.1, 100.0);
      const Vec3 c = ob.Flip(p);
      EXPECT_GE(c.x, 0.0);
      EXPECT_GE(c.y, 0.0);
      EXPECT_GE(c.z, 0.0);
      EXPECT_EQ(ob.Flip(c), p);
      EXPECT_NEAR(c.Norm(), p.Norm(), 1e-12);
    }
  }
}

TEST(OctantBoundTest, WedgePlanesContainEveryAddedPoint) {
  Rng rng(4);
  for (int octant = 0; octant < 8; ++octant) {
    OctantBound ob(octant);
    std::vector<Vec3> canonical;
    for (int i = 0; i < 60; ++i) {
      const Vec3 p = RandomPointInOctant(rng, octant, 0.1, 200.0);
      ob.Add(p);
      canonical.push_back(ob.Flip(p));
    }
    const auto planes = ob.WedgePlanes();
    ASSERT_EQ(planes.size(), 4u);
    for (const Vec3& c : canonical) {
      EXPECT_TRUE(PolytopeContains(planes, c, 1e-6 * (1.0 + c.Norm())));
    }
  }
}

TEST(OctantBoundTest, ClippedHullContainsEveryAddedPoint) {
  // The hull vertices define (prism intersect wedges); every added point
  // must satisfy all of its half-spaces. This is the soundness core of the
  // 3-D upper bound.
  Rng rng(5);
  for (int octant = 0; octant < 8; ++octant) {
    OctantBound ob(octant);
    std::vector<Vec3> canonical;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      const Vec3 p = RandomPointInOctant(rng, octant, 0.1, 150.0);
      ob.Add(p);
      canonical.push_back(ob.Flip(p));
    }
    std::vector<Plane3> all = BoxPlanes(ob.box());
    const auto wedge = ob.WedgePlanes();
    all.insert(all.end(), wedge.begin(), wedge.end());
    for (const Vec3& c : canonical) {
      EXPECT_TRUE(PolytopeContains(all, c, 1e-6 * (1.0 + c.Norm())));
    }
    const auto hull = ob.HullVertices();
    EXPECT_FALSE(hull.empty());
    // Hull vertices themselves are feasible for all half-spaces.
    for (const Vec3& v : hull) {
      EXPECT_TRUE(PolytopeContains(all, v, 1e-5 * (1.0 + v.Norm())));
    }
  }
}

TEST(OctantBoundTest, PaperSignificantPointsAreAtMost17) {
  Rng rng(6);
  for (int octant = 0; octant < 8; ++octant) {
    OctantBound ob(octant);
    for (int i = 0; i < 30; ++i) {
      ob.Add(RandomPointInOctant(rng, octant, 0.5, 80.0));
    }
    const auto sig = ob.PaperSignificantPoints();
    EXPECT_FALSE(sig.empty());
    EXPECT_LE(sig.size(), 17u)
        << "paper: <= 4 intersections per bounding plane + far vertex";
  }
}

TEST(OctantBoundTest, SinglePointCollapses) {
  OctantBound ob(0);
  const Vec3 p{3.0, 4.0, 5.0};
  ob.Add(p);
  EXPECT_DOUBLE_EQ(ob.az_min(), ob.az_max());
  EXPECT_DOUBLE_EQ(ob.incl_min(), ob.incl_max());
  const auto hull = ob.HullVertices();
  ASSERT_FALSE(hull.empty());
  for (const Vec3& v : hull) {
    EXPECT_NEAR(Distance(v, p), 0.0, 1e-6);
  }
}

TEST(OctantBoundTest, ResetRestoresEmpty) {
  OctantBound ob(3);
  Rng rng(9);
  ob.Add(RandomPointInOctant(rng, 3, 1.0, 10.0));
  EXPECT_FALSE(ob.empty());
  ob.Reset();
  EXPECT_TRUE(ob.empty());
  EXPECT_EQ(ob.octant(), 3);
}

TEST(OctantBoundTest, AnglesStayInCanonicalRanges) {
  Rng rng(10);
  for (int octant = 0; octant < 8; ++octant) {
    OctantBound ob(octant);
    for (int i = 0; i < 40; ++i) {
      ob.Add(RandomPointInOctant(rng, octant, 0.1, 60.0));
    }
    EXPECT_GE(ob.az_min(), 0.0);
    EXPECT_LE(ob.az_max(), kHalfPi + 1e-12);
    EXPECT_GE(ob.incl_min(), 0.0);
    EXPECT_LE(ob.incl_max(), kHalfPi + 1e-12);
  }
}

}  // namespace
}  // namespace bqs
