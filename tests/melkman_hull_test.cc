// MelkmanHull: incremental hull equals the batch hull on arbitrary
// (self-intersecting) streams, and hull-based max deviation equals the
// brute-force scan over every added point — the property the BQS exact
// path relies on.
#include "geometry/melkman_hull.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/convex_hull2.h"
#include "test_util.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

using testing_util::JaggedWalk;
using testing_util::SmoothWalk;
using testing_util::VonMisesWalk;

std::vector<Vec2> Positions(const Trajectory& t) {
  std::vector<Vec2> out;
  out.reserve(t.size());
  for (const TrackPoint& p : t) out.push_back(p.pos);
  return out;
}

double BruteDeviation(const std::vector<Vec2>& points, Vec2 a, Vec2 b,
                      DistanceMetric metric) {
  double dev = 0.0;
  for (Vec2 p : points) dev = std::max(dev, PointDeviation(p, a, b, metric));
  return dev;
}

/// The incremental hull may keep extra exactly-collinear boundary vertices
/// the batch hull drops; equivalence means (a) every batch vertex appears
/// verbatim, (b) every incremental vertex is on the batch hull, (c) the
/// areas agree.
void ExpectHullsEquivalent(const MelkmanHull& hull,
                           const std::vector<Vec2>& points) {
  const std::vector<Vec2> reference = ConvexHull(points);
  const std::vector<Vec2> vertices = hull.Vertices();
  if (reference.size() < 3) {
    // Degenerate input: both sides hold the chain extremes.
    ASSERT_EQ(vertices.size(), reference.size());
    for (Vec2 v : reference) {
      EXPECT_NE(std::find(vertices.begin(), vertices.end(), v),
                vertices.end())
          << "missing extreme (" << v.x << ", " << v.y << ")";
    }
    return;
  }
  for (Vec2 v : reference) {
    EXPECT_NE(std::find(vertices.begin(), vertices.end(), v), vertices.end())
        << "batch hull vertex (" << v.x << ", " << v.y
        << ") lost by the incremental hull";
  }
  for (Vec2 v : vertices) {
    EXPECT_TRUE(ConvexPolygonContains(reference, v, 1e-7))
        << "incremental vertex (" << v.x << ", " << v.y
        << ") outside the batch hull";
  }
  const double ref_area = PolygonSignedArea2(reference);
  const double inc_area = PolygonSignedArea2(vertices);
  EXPECT_NEAR(inc_area, ref_area, 1e-9 * (1.0 + std::fabs(ref_area)));
}

TEST(MelkmanHullTest, EmptyAndSinglePoint) {
  MelkmanHull hull;
  EXPECT_TRUE(hull.empty());
  EXPECT_EQ(hull.size(), 0u);
  EXPECT_EQ(hull.MaxDeviation({0, 0}, {1, 0}, DistanceMetric::kPointToLine),
            0.0);
  hull.Add({3.0, 4.0});
  EXPECT_EQ(hull.size(), 1u);
  EXPECT_DOUBLE_EQ(
      hull.MaxDeviation({0, 0}, {0, 0}, DistanceMetric::kPointToLine), 5.0);
}

TEST(MelkmanHullTest, DuplicatesCollapseToOneVertex) {
  MelkmanHull hull;
  for (int i = 0; i < 50; ++i) hull.Add({7.0, -2.0});
  EXPECT_EQ(hull.size(), 1u);
  EXPECT_EQ(hull.points_added(), 50u);
}

TEST(MelkmanHullTest, CollinearStreamKeepsChainExtremes) {
  // Out-of-order collinear points, with duplicates.
  MelkmanHull hull;
  for (double t : {3.0, -1.0, 0.5, 7.0, 7.0, 2.0, -4.0, 5.0}) {
    hull.Add({2.0 * t, -t});
  }
  ASSERT_EQ(hull.size(), 2u);
  const std::vector<Vec2> v = hull.Vertices();
  const Vec2 lo{2.0 * -4.0, 4.0};
  const Vec2 hi{2.0 * 7.0, -7.0};
  EXPECT_TRUE((v[0] == lo && v[1] == hi) || (v[0] == hi && v[1] == lo));
  // Deviation against an arbitrary chord still sees the extremes only.
  EXPECT_DOUBLE_EQ(
      hull.MaxDeviation({0, 0}, {1, 0}, DistanceMetric::kPointToLine), 7.0);
}

TEST(MelkmanHullTest, CollinearThenOffLinePointFormsTriangle) {
  MelkmanHull hull;
  for (int i = 0; i <= 10; ++i) hull.Add({static_cast<double>(i), 0.0});
  ASSERT_EQ(hull.size(), 2u);
  hull.Add({5.0, 3.0});
  ASSERT_EQ(hull.size(), 3u);
  ExpectHullsEquivalent(hull, {{0, 0}, {10, 0}, {5, 3}});
}

TEST(MelkmanHullTest, EscapeThroughFarSideIsCaught) {
  // The classic Melkman counterexample for non-simple input: the anchor
  // (last hull-modifying point) is the top-left corner; the next point
  // leaves the hull through the bottom edge while staying inside the
  // anchor's wedge, so the plain O(1) test would wrongly discard it.
  MelkmanHull hull;
  std::vector<Vec2> points{{0, 0}, {10, 0}, {10, 10}, {0, 10},
                           {5, 5},  {4, 6},  {5, -50}};
  for (Vec2 p : points) hull.Add(p);
  const std::vector<Vec2> vertices = hull.Vertices();
  EXPECT_NE(std::find(vertices.begin(), vertices.end(), Vec2{5, -50}),
            vertices.end())
      << "escaping point was wrongly classified as interior";
  ExpectHullsEquivalent(hull, points);
  EXPECT_DOUBLE_EQ(
      hull.MaxDeviation({0, 0}, {10, 0}, DistanceMetric::kPointToLine),
      50.0);
}

TEST(MelkmanHullTest, NearCollinearSliverKeepsChainExtent) {
  // Regression: a straight run whose accumulated coordinates are collinear
  // only to within floating-point noise forms a sliver hull. Exact-sign
  // Melkman tests misclassify the extension points and silently lose
  // macroscopic extent (metres of deviation); the error-band predicates
  // must keep the far extreme. Points taken from the JaggedWalk(71) stream
  // that exposed the bug.
  const std::vector<Vec2> points{
      {47.864170871436322, 19.448298857810467},
      {59.864170871436322, 24.448298857810467},
      {71.864170871436329, 29.448298857810467},
      {83.864170871436329, 34.448298857810471},
      {95.864170871436329, 39.448298857810471},
      {107.86417087143633, 44.448298857810471},
      {119.86417087143633, 49.448298857810471},
      {131.86417087143633, 54.448298857810471},
      {1.6797119105315181, -3.1597135970240839},
  };
  MelkmanHull hull;
  std::vector<Vec2> seen;
  for (Vec2 p : points) {
    hull.Add(p);
    seen.push_back(p);
    for (DistanceMetric metric : {DistanceMetric::kPointToLine,
                                  DistanceMetric::kPointToSegment}) {
      const double brute =
          BruteDeviation(seen, {0.0, 0.0}, {64.0, 10.0}, metric);
      const double via_hull =
          hull.MaxDeviation({0.0, 0.0}, {64.0, 10.0}, metric);
      EXPECT_NEAR(via_hull, brute, 1e-9 * (1.0 + brute));
    }
  }
  const std::vector<Vec2> vertices = hull.Vertices();
  EXPECT_NE(std::find(vertices.begin(), vertices.end(),
                      Vec2{131.86417087143633, 54.448298857810471}),
            vertices.end())
      << "far chain extreme lost on the near-collinear sliver";
}

TEST(MelkmanHullTest, MatchesBatchHullOnRandomStreams) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const Trajectory walks[] = {SmoothWalk(seed, 1500),
                                JaggedWalk(seed, 1500),
                                VonMisesWalk(seed, 1500)};
    for (const Trajectory& walk : walks) {
      const std::vector<Vec2> points = Positions(walk);
      MelkmanHull hull;
      for (Vec2 p : points) hull.Add(p);
      ExpectHullsEquivalent(hull, points);
    }
  }
}

TEST(MelkmanHullTest, MaxDeviationEqualsBruteForceWhileStreaming) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    const Trajectory walks[] = {SmoothWalk(seed, 1200),
                                JaggedWalk(seed, 1200),
                                VonMisesWalk(seed, 1200, 1.5)};
    for (const Trajectory& walk : walks) {
      const std::vector<Vec2> points = Positions(walk);
      MelkmanHull hull;
      std::vector<Vec2> seen;
      for (std::size_t i = 0; i < points.size(); ++i) {
        hull.Add(points[i]);
        seen.push_back(points[i]);
        if (i % 37 != 0) continue;
        // The chord the BQS engine queries: segment start to current point.
        const Vec2 a = points.front();
        const Vec2 b = points[i];
        for (DistanceMetric metric : {DistanceMetric::kPointToLine,
                                      DistanceMetric::kPointToSegment}) {
          const double brute = BruteDeviation(seen, a, b, metric);
          const double via_hull = hull.MaxDeviation(a, b, metric);
          EXPECT_NEAR(via_hull, brute, 1e-9 * (1.0 + brute))
              << "seed=" << seed << " i=" << i
              << " metric=" << static_cast<int>(metric);
        }
      }
    }
  }
}

TEST(MelkmanHullTest, ClearReusesArenaCorrectly) {
  MelkmanHull hull;
  const std::vector<Vec2> first = Positions(JaggedWalk(21, 800));
  for (Vec2 p : first) hull.Add(p);
  ExpectHullsEquivalent(hull, first);
  hull.Clear();
  EXPECT_TRUE(hull.empty());
  EXPECT_EQ(hull.size(), 0u);
  const std::vector<Vec2> second = Positions(SmoothWalk(22, 800));
  for (Vec2 p : second) hull.Add(p);
  ExpectHullsEquivalent(hull, second);
}

}  // namespace
}  // namespace bqs
