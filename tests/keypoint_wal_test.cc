// KeyPointWal: append/recover round trips across every durability policy,
// segment rotation, the corruption matrix (RecoverSegment on crafted
// images), deterministic fault injection (torn write, failed fsync, crash
// after write), and the fleet-engine checkpoint integration ending in
// TrajectoryStore::RestoreFromWal.
#include "storage/keypoint_wal.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "service/fleet_engine.h"
#include "simulation/datasets.h"
#include "storage/trajectory_store.h"
#include "storage/wal_format.h"

namespace bqs {
namespace {

/// A fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<KeyPoint> MakeKeys(uint64_t start_index, int n, double base) {
  std::vector<KeyPoint> keys;
  for (int i = 0; i < n; ++i) {
    KeyPoint k;
    k.index = start_index + static_cast<uint64_t>(i) * 7;
    k.point.t = base + i * 4.25;
    k.point.pos = {base * 2.0 + i * 12.5, -base + i * 3.125};
    keys.push_back(k);
  }
  return keys;
}

wal::WalCheckpoint Quantized(DeviceId device, uint64_t seq,
                             const std::vector<KeyPoint>& keys,
                             const wal::WalQuantization& quant) {
  wal::WalCheckpoint cp;
  cp.device = device;
  cp.seq = seq;
  for (const KeyPoint& k : keys) cp.points.push_back(wal::Quantize(k, quant));
  return cp;
}

TEST(KeyPointWalTest, RoundTripAcrossDurabilityPolicies) {
  int variant = 0;
  for (const WalDurability policy :
       {WalDurability::kNone, WalDurability::kFlushEveryBatch,
        WalDurability::kFsyncEveryBatch, WalDurability::kGroupCommit}) {
    KeyPointWalOptions options;
    options.dir = FreshDir("wal_rt_" + std::to_string(variant++));
    options.durability = policy;
    KeyPointWal wal(options);
    ASSERT_TRUE(wal.Open().ok());

    std::vector<wal::WalCheckpoint> expected;
    for (int c = 0; c < 5; ++c) {
      const DeviceId device = 10 + static_cast<DeviceId>(c % 3);
      const std::vector<KeyPoint> keys =
          MakeKeys(static_cast<uint64_t>(c) * 100, 4, c * 50.0);
      const auto ack = wal.Append(device, keys);
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
      EXPECT_EQ(ack.value().seq, static_cast<uint64_t>(c) + 1);
      EXPECT_EQ(ack.value().segment_index, 1u);
      expected.push_back(Quantized(device, static_cast<uint64_t>(c) + 1,
                                   keys, options.quant));
    }
    EXPECT_EQ(wal.next_seq(), 6u);
    ASSERT_TRUE(wal.Close().ok());

    const auto recovered = WalReader::Recover(options.dir);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(recovered.value().report.clean());
    EXPECT_EQ(recovered.value().report.records_recovered, 5u);
    EXPECT_EQ(recovered.value().checkpoints, expected);
    EXPECT_EQ(recovered.value().next_seq, 6u);
    EXPECT_EQ(recovered.value().quant, options.quant);

    const KeyPointWalStats stats = wal.stats();
    EXPECT_EQ(stats.checkpoints_appended, 5u);
    EXPECT_EQ(stats.points_appended, 20u);
    EXPECT_EQ(stats.segments_opened, 1u);
  }
}

TEST(KeyPointWalTest, AppendCheckpointIsBitExactForHostileValues) {
  // Adversarial quantized values (the raw int64 patterns the round-trip
  // fuzzer feeds) must survive delta coding bit-exactly.
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_bitexact");
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());

  wal::WalCheckpoint cp;
  cp.device = UINT64_MAX;
  cp.points.push_back(wal::WalPoint{0, INT64_MIN, INT64_MAX, -1});
  cp.points.push_back(wal::WalPoint{UINT64_MAX, INT64_MAX, INT64_MIN, 1});
  cp.points.push_back(wal::WalPoint{3, 0, 0, 0});
  const auto ack = wal.AppendCheckpoint(cp);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_TRUE(wal.Close().ok());

  const auto recovered = WalReader::Recover(options.dir);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered.value().checkpoints.size(), 1u);
  EXPECT_EQ(recovered.value().checkpoints[0].device, cp.device);
  EXPECT_EQ(recovered.value().checkpoints[0].points, cp.points);
  // seq is writer-assigned regardless of what the checkpoint carried.
  EXPECT_EQ(recovered.value().checkpoints[0].seq, 1u);
}

TEST(KeyPointWalTest, RotationSpansSegmentsAndRecoveryReplaysAll) {
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_rotate");
  options.segment_bytes = 64;  // essentially one record per segment
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());

  std::vector<wal::WalCheckpoint> expected;
  uint64_t last_segment = 0;
  for (int c = 0; c < 12; ++c) {
    const std::vector<KeyPoint> keys =
        MakeKeys(static_cast<uint64_t>(c) * 10, 3, c * 25.0);
    const auto ack = wal.Append(5, keys);
    ASSERT_TRUE(ack.ok());
    EXPECT_GE(ack.value().segment_index, last_segment);
    last_segment = ack.value().segment_index;
    expected.push_back(
        Quantized(5, static_cast<uint64_t>(c) + 1, keys, options.quant));
  }
  ASSERT_TRUE(wal.Close().ok());
  EXPECT_GT(last_segment, 1u) << "segment_bytes=64 must force rotation";

  const auto files = ListWalSegments(options.dir);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files.value().size(), wal.stats().segments_opened);
  EXPECT_EQ(files.value().back().index, last_segment);

  const auto recovered = WalReader::Recover(options.dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().report.clean());
  EXPECT_EQ(recovered.value().checkpoints, expected);
  EXPECT_EQ(recovered.value().next_seq, 13u);
}

TEST(KeyPointWalTest, ReopenAfterRecoveryContinuesTheSequence) {
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_reopen");

  std::vector<wal::WalCheckpoint> expected;
  {
    KeyPointWal wal(options);
    ASSERT_TRUE(wal.Open().ok());
    for (int c = 0; c < 3; ++c) {
      const std::vector<KeyPoint> keys = MakeKeys(0, 2, c * 10.0);
      ASSERT_TRUE(wal.Append(1, keys).ok());
      expected.push_back(
          Quantized(1, static_cast<uint64_t>(c) + 1, keys, options.quant));
    }
    ASSERT_TRUE(wal.Close().ok());
  }

  const auto first = WalReader::Recover(options.dir);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().next_seq, 4u);

  {
    KeyPointWal wal(options);
    ASSERT_TRUE(wal.Open(first.value().next_seq).ok());
    EXPECT_EQ(wal.next_seq(), 4u);
    for (int c = 0; c < 2; ++c) {
      const std::vector<KeyPoint> keys = MakeKeys(100, 2, 50.0 + c);
      const auto ack = wal.Append(1, keys);
      ASSERT_TRUE(ack.ok());
      // The reopened writer starts a fresh segment past the old one.
      EXPECT_EQ(ack.value().segment_index, 2u);
      expected.push_back(
          Quantized(1, static_cast<uint64_t>(c) + 4, keys, options.quant));
    }
    ASSERT_TRUE(wal.Close().ok());
  }

  const auto second = WalReader::Recover(options.dir);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().report.clean());
  EXPECT_EQ(second.value().checkpoints, expected);
  EXPECT_EQ(second.value().next_seq, 6u);
}

TEST(KeyPointWalTest, OpenAndAppendValidation) {
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_validate");
  KeyPointWal wal(options);

  // Append before Open.
  const std::vector<KeyPoint> keys = MakeKeys(0, 2, 1.0);
  EXPECT_FALSE(wal.Append(1, keys).ok());

  ASSERT_TRUE(wal.Open().ok());
  // Double open.
  EXPECT_FALSE(wal.Open().ok());
  // Empty checkpoint.
  const auto empty = wal.Append(1, {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  // The rejections left the writer alive.
  EXPECT_FALSE(wal.dead());
  EXPECT_TRUE(wal.Append(1, keys).ok());
  EXPECT_TRUE(wal.Close().ok());

  // Empty directory option.
  KeyPointWal no_dir((KeyPointWalOptions()));
  EXPECT_FALSE(no_dir.Open().ok());
}

TEST(KeyPointWalTest, RecoverOnMissingDirectoryIsNotFound) {
  const auto recovered =
      WalReader::Recover(FreshDir("wal_never_created") + "/nope");
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(KeyPointWalTest, EmptyLogRecoversClean) {
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_empty");
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Close().ok());
  const auto recovered = WalReader::Recover(options.dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().report.clean());
  EXPECT_TRUE(recovered.value().checkpoints.empty());
  EXPECT_EQ(recovered.value().report.segments_scanned, 1u);
}

// --- corruption matrix, driven through RecoverSegment on crafted images ---

wal::WalCheckpoint TestCheckpoint(uint64_t seq, int npoints) {
  wal::WalCheckpoint cp;
  cp.device = 7;
  cp.seq = seq;
  for (int i = 0; i < npoints; ++i) {
    cp.points.push_back(wal::WalPoint{
        seq * 100 + static_cast<uint64_t>(i),
        static_cast<int64_t>(seq) * 1000 + i * 40,
        static_cast<int64_t>(i) * 125 - 300,
        -static_cast<int64_t>(seq) * 50 + i});
  }
  return cp;
}

/// A well-formed segment image plus the end offset of each record.
struct Image {
  std::string bytes;
  std::vector<std::size_t> record_ends;
  std::vector<wal::WalCheckpoint> checkpoints;
};

Image BuildImage(int records) {
  Image image;
  wal::EncodeSegmentHeader(wal::WalQuantization{}, 1, &image.bytes);
  for (int r = 0; r < records; ++r) {
    image.checkpoints.push_back(
        TestCheckpoint(static_cast<uint64_t>(r) + 1, 3));
    wal::EncodeRecord(image.checkpoints.back(), &image.bytes);
    image.record_ends.push_back(image.bytes.size());
  }
  return image;
}

std::span<const uint8_t> AsSpan(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(WalRecoverSegmentTest, CleanImageReplaysEverything) {
  const Image image = BuildImage(4);
  std::vector<wal::WalCheckpoint> out;
  WalRecoveryReport report;
  WalReader::RecoverSegment(AsSpan(image.bytes), /*is_last=*/true, &out,
                            &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(out, image.checkpoints);
}

TEST(WalRecoverSegmentTest, FlippedByteInClosedSegmentSkipsOneRecord) {
  Image image = BuildImage(3);
  // Flip a payload byte of the middle record.
  const std::size_t victim = image.record_ends[0] + wal::kRecordHeaderBytes + 2;
  image.bytes[victim] = static_cast<char>(image.bytes[victim] ^ 0x40);

  std::vector<wal::WalCheckpoint> out;
  WalRecoveryReport report;
  WalReader::RecoverSegment(AsSpan(image.bytes), /*is_last=*/false, &out,
                            &report);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], image.checkpoints[0]);
  EXPECT_EQ(out[1], image.checkpoints[2]);  // replay resumed past the skip
  EXPECT_EQ(report.bad_crc, 1u);
  EXPECT_EQ(report.torn_tail, 0u);
  EXPECT_EQ(report.bytes_dropped,
            image.record_ends[1] - image.record_ends[0]);
}

TEST(WalRecoverSegmentTest, FlippedByteInLastSegmentTruncates) {
  Image image = BuildImage(3);
  const std::size_t victim = image.record_ends[0] + wal::kRecordHeaderBytes + 2;
  image.bytes[victim] = static_cast<char>(image.bytes[victim] ^ 0x40);

  std::vector<wal::WalCheckpoint> out;
  WalRecoveryReport report;
  WalReader::RecoverSegment(AsSpan(image.bytes), /*is_last=*/true, &out,
                            &report);
  // Torn and flipped are indistinguishable in the live segment: truncate.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], image.checkpoints[0]);
  EXPECT_EQ(report.torn_tail, 1u);
  EXPECT_EQ(report.bad_crc, 0u);
  EXPECT_EQ(report.bytes_dropped,
            image.bytes.size() - image.record_ends[0]);
}

TEST(WalRecoverSegmentTest, ImplausibleLengthDropsTheRestInAnySegment) {
  for (const bool is_last : {false, true}) {
    for (const uint32_t bad_len :
         {UINT32_MAX, static_cast<uint32_t>(wal::kMaxRecordPayload + 1),
          static_cast<uint32_t>(1 << 20)}) {  // overruns but "plausible"
      Image image = BuildImage(3);
      // Overwrite the second record's length field.
      const std::size_t at = image.record_ends[0];
      for (int i = 0; i < 4; ++i) {
        image.bytes[at + static_cast<std::size_t>(i)] =
            static_cast<char>((bad_len >> (8 * i)) & 0xff);
      }
      std::vector<wal::WalCheckpoint> out;
      WalRecoveryReport report;
      WalReader::RecoverSegment(AsSpan(image.bytes), is_last, &out, &report);
      ASSERT_EQ(out.size(), 1u) << "is_last=" << is_last;
      EXPECT_EQ(report.torn_tail, 1u);
      EXPECT_EQ(report.bytes_dropped,
                image.bytes.size() - image.record_ends[0]);
    }
  }
}

TEST(WalRecoverSegmentTest, PartialRecordHeaderAtTail) {
  Image image = BuildImage(2);
  image.bytes.resize(image.record_ends[1] + 5);  // 5 stray tail bytes

  std::vector<wal::WalCheckpoint> out;
  WalRecoveryReport report;
  WalReader::RecoverSegment(AsSpan(image.bytes), /*is_last=*/true, &out,
                            &report);
  EXPECT_EQ(out, image.checkpoints);
  EXPECT_EQ(report.short_header, 1u);
  EXPECT_EQ(report.bytes_dropped, 5u);
}

TEST(WalRecoverSegmentTest, GarbledHeaderDropsTheSegment) {
  for (const std::size_t victim : {std::size_t{0},     // magic
                                   std::size_t{4},     // version
                                   std::size_t{12},    // time quantum
                                   std::size_t{35}}) { // header CRC
    Image image = BuildImage(2);
    image.bytes[victim] = static_cast<char>(image.bytes[victim] ^ 0x01);
    std::vector<wal::WalCheckpoint> out;
    WalRecoveryReport report;
    WalReader::RecoverSegment(AsSpan(image.bytes), /*is_last=*/true, &out,
                              &report);
    EXPECT_TRUE(out.empty()) << "flip at " << victim;
    EXPECT_EQ(report.segments_bad_header, 1u);
    EXPECT_EQ(report.bytes_dropped, image.bytes.size());
  }
}

TEST(WalRecoverSegmentTest, EmptyAndHeaderOnlyImagesAreClean) {
  std::vector<wal::WalCheckpoint> out;
  WalRecoveryReport report;
  WalReader::RecoverSegment({}, /*is_last=*/true, &out, &report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.segments_scanned, 1u);

  std::string header_only;
  wal::EncodeSegmentHeader(wal::WalQuantization{}, 1, &header_only);
  WalReader::RecoverSegment(AsSpan(header_only), /*is_last=*/true, &out,
                            &report);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(out.empty());
}

TEST(WalRecoverSegmentTest, CrcValidUndecodablePayloadIsBadVarint) {
  // A record whose CRC is correct but whose payload is not a checkpoint —
  // the "encoder bug or crafted record" case. Framing must survive it.
  Image image = BuildImage(1);
  std::string payload(12, static_cast<char>(0xff));  // malformed varints
  std::string header;
  wal::PutU32(&header, static_cast<uint32_t>(payload.size()));
  uint32_t crc = crc32c::Value(header.data(), 4);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  wal::PutU32(&header, crc32c::Mask(crc));
  image.bytes.insert(image.record_ends[0], header + payload);
  const std::size_t bad_record_bytes = header.size() + payload.size();
  wal::EncodeRecord(TestCheckpoint(9, 2), &image.bytes);  // a good one after

  std::vector<wal::WalCheckpoint> out;
  WalRecoveryReport report;
  WalReader::RecoverSegment(AsSpan(image.bytes), /*is_last=*/true, &out,
                            &report);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], image.checkpoints[0]);
  EXPECT_EQ(out[1].seq, 9u);
  EXPECT_EQ(report.bad_varint, 1u);
  EXPECT_EQ(report.bytes_dropped, bad_record_bytes);
  EXPECT_EQ(report.records_skipped(), 1u);
}

// --- deterministic fault injection ---------------------------------------

TEST(KeyPointWalFaultTest, ShortWriteKillsWriterAndRecoveryTruncates) {
  // cut=5: the torn flush leaves 5 bytes of the record — a partial header.
  // cut=20: header intact, payload truncated — a torn tail.
  struct Case {
    uint64_t cut;
    bool expect_short_header;
  };
  int variant = 0;
  for (const Case c : {Case{5, true}, Case{20, false}}) {
    FaultInjector injector(42);
    KeyPointWalOptions options;
    options.dir = FreshDir("wal_shortwrite_" + std::to_string(variant++));
    options.durability = WalDurability::kFlushEveryBatch;
    options.fault_injector = &injector;
    KeyPointWal wal(options);
    ASSERT_TRUE(wal.Open().ok());

    std::vector<wal::WalCheckpoint> expected;
    for (int i = 0; i < 3; ++i) {
      const std::vector<KeyPoint> keys = MakeKeys(0, 3, i * 20.0);
      ASSERT_TRUE(wal.Append(2, keys).ok());
      expected.push_back(
          Quantized(2, static_cast<uint64_t>(i) + 1, keys, options.quant));
    }
    // Arm *after* Open so the segment-header flush is not the victim.
    injector.Arm(FaultSite::kWriteShortAtByte, 1.0, /*max_fires=*/1,
                 /*param=*/c.cut);
    const auto doomed = wal.Append(2, MakeKeys(0, 3, 99.0));
    ASSERT_FALSE(doomed.ok());
    EXPECT_EQ(doomed.status().code(), StatusCode::kIoError);
    EXPECT_TRUE(wal.dead());
    EXPECT_EQ(injector.fires(FaultSite::kWriteShortAtByte), 1u);
    EXPECT_EQ(wal.stats().faults_injected, 1u);

    // The fsync gate: no append, sync, anything ever again.
    EXPECT_FALSE(wal.Append(2, MakeKeys(0, 2, 1.0)).ok());
    EXPECT_FALSE(wal.Sync().ok());
    EXPECT_TRUE(wal.Close().ok());  // error was already reported

    const auto recovered = WalReader::Recover(options.dir);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered.value().checkpoints, expected);
    const WalRecoveryReport& report = recovered.value().report;
    if (c.expect_short_header) {
      EXPECT_EQ(report.short_header, 1u);
      EXPECT_EQ(report.torn_tail, 0u);
    } else {
      EXPECT_EQ(report.torn_tail, 1u);
      EXPECT_EQ(report.short_header, 0u);
    }
    EXPECT_EQ(report.bytes_dropped, c.cut);
  }
}

TEST(KeyPointWalFaultTest, FsyncFailureKillsWriterButFlushedBytesSurvive) {
  FaultInjector injector(43);
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_fsyncfail");
  options.durability = WalDurability::kFsyncEveryBatch;
  options.fault_injector = &injector;
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(3, MakeKeys(0, 2, 1.0)).ok());

  injector.Arm(FaultSite::kFsyncFail, 1.0, /*max_fires=*/1);
  const auto doomed = wal.Append(3, MakeKeys(0, 2, 2.0));
  ASSERT_FALSE(doomed.ok());
  EXPECT_TRUE(wal.dead());

  // The doomed record was written (flush preceded the failed sync), so
  // recovery may return *more* than was acked — the contract is that every
  // ack survives, never that unacked bytes vanish.
  const auto recovered = WalReader::Recover(options.dir);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered.value().checkpoints.size(), 2u);
  EXPECT_TRUE(recovered.value().report.clean());
  EXPECT_EQ(recovered.value().checkpoints[0].seq, 1u);
}

TEST(KeyPointWalFaultTest, CrashAfterWriteDiscardsUnflushedBuffer) {
  // Under kNone everything (header included) still sits in user space, so
  // the injected crash loses it all — exactly what kNone promises.
  FaultInjector injector(44);
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_crash_none");
  options.durability = WalDurability::kNone;
  options.fault_injector = &injector;
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(4, MakeKeys(0, 2, 1.0)).ok());

  injector.Arm(FaultSite::kCrashAfterWrite, 1.0, /*max_fires=*/1);
  ASSERT_FALSE(wal.Append(4, MakeKeys(0, 2, 2.0)).ok());
  EXPECT_TRUE(wal.dead());
  EXPECT_TRUE(wal.Close().ok());

  const auto recovered = WalReader::Recover(options.dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered.value().checkpoints.empty());
  EXPECT_TRUE(recovered.value().report.clean());  // empty file, no loss seen
}

TEST(KeyPointWalFaultTest, CrashAfterWriteUnderFlushKeepsDurableRecords) {
  FaultInjector injector(45);
  KeyPointWalOptions options;
  options.dir = FreshDir("wal_crash_flush");
  options.durability = WalDurability::kFlushEveryBatch;
  options.fault_injector = &injector;
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(4, MakeKeys(0, 2, 1.0)).ok());
  ASSERT_TRUE(wal.Append(4, MakeKeys(0, 2, 2.0)).ok());

  injector.Arm(FaultSite::kCrashAfterWrite, 1.0, /*max_fires=*/1);
  ASSERT_FALSE(wal.Append(4, MakeKeys(0, 2, 3.0)).ok());
  EXPECT_TRUE(wal.Close().ok());

  // The third record reached the OS before the "crash": it is recovered
  // even though it was never acked. Acked records 1-2 are a prefix.
  const auto recovered = WalReader::Recover(options.dir);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered.value().checkpoints.size(), 3u);
  EXPECT_TRUE(recovered.value().report.clean());
  EXPECT_EQ(recovered.value().checkpoints[0].seq, 1u);
  EXPECT_EQ(recovered.value().checkpoints[1].seq, 2u);
}

// --- fleet engine integration --------------------------------------------

class KeyCollectSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[device].push_back(key);
  }
  std::map<DeviceId, std::vector<KeyPoint>> keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }

 private:
  mutable std::mutex mu_;
  std::map<DeviceId, std::vector<KeyPoint>> keys_;
};

TEST(KeyPointWalFleetTest, EngineCheckpointsEveryEmittedKeyPoint) {
  const FleetDataset fleet = BuildFleetDataset(6, 0.05, 4242);
  int variant = 0;
  for (const std::size_t shards : {std::size_t{0}, std::size_t{3}}) {
    KeyPointWalOptions wal_options;
    wal_options.dir = FreshDir("wal_fleet_" + std::to_string(variant++));
    KeyPointWal wal(wal_options);
    ASSERT_TRUE(wal.Open().ok());

    KeyCollectSink sink;
    FleetEngineOptions options;
    options.algorithm.id = AlgorithmId::kFbqs;
    options.algorithm.epsilon = 8.0;
    options.num_shards = shards;
    options.wal = &wal;
    options.wal_checkpoint_points = 8;  // force mid-session checkpoints
    {
      FleetEngine engine(options, sink);
      engine.IngestBatch(fleet.feed);
      engine.FinishAll();
      const FleetStats stats = engine.Stats();
      EXPECT_GT(stats.wal_checkpoints, 0u);
      EXPECT_EQ(stats.wal_append_failures, 0u);
      // Every emitted key point was staged and checkpointed exactly once.
      EXPECT_EQ(stats.wal_points, stats.key_points_emitted);
    }
    ASSERT_TRUE(wal.Close().ok());

    const auto recovered = WalReader::Recover(wal_options.dir);
    ASSERT_TRUE(recovered.ok());
    EXPECT_TRUE(recovered.value().report.clean());

    // Per device, checkpoints concatenated in replay order reproduce the
    // sink's emission order, quantized — bit-exact.
    std::map<DeviceId, std::vector<wal::WalPoint>> replayed;
    for (const wal::WalCheckpoint& cp : recovered.value().checkpoints) {
      for (const wal::WalPoint& p : cp.points) {
        replayed[cp.device].push_back(p);
      }
    }
    const auto emitted = sink.keys();
    ASSERT_EQ(replayed.size(), emitted.size());
    for (const auto& [device, keys] : emitted) {
      const auto it = replayed.find(device);
      ASSERT_NE(it, replayed.end()) << "device " << device;
      ASSERT_EQ(it->second.size(), keys.size()) << "device " << device;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(it->second[i], wal::Quantize(keys[i], wal_options.quant))
            << "device " << device << " point " << i;
        // And the dequantized point is within quantum/2 per axis: the
        // split-error-budget half the WAL contributes.
        const KeyPoint back =
            wal::Dequantize(it->second[i], recovered.value().quant);
        EXPECT_LE(std::abs(back.point.pos.x - keys[i].point.pos.x),
                  wal_options.quant.coord_quantum / 2 + 1e-12);
        EXPECT_LE(std::abs(back.point.pos.y - keys[i].point.pos.y),
                  wal_options.quant.coord_quantum / 2 + 1e-12);
        EXPECT_LE(std::abs(back.point.t - keys[i].point.t),
                  wal_options.quant.time_quantum / 2 + 1e-12);
        EXPECT_EQ(back.index, keys[i].index);
      }
    }
  }
}

TEST(KeyPointWalFleetTest, CheckpointWalBarrierDrainsStagedPoints) {
  const FleetDataset fleet = BuildFleetDataset(4, 0.04, 4243);
  KeyPointWalOptions wal_options;
  wal_options.dir = FreshDir("wal_fleet_barrier");
  KeyPointWal wal(wal_options);
  ASSERT_TRUE(wal.Open().ok());

  KeyCollectSink sink;
  FleetEngineOptions options;
  options.algorithm.id = AlgorithmId::kFbqs;
  options.algorithm.epsilon = 8.0;
  options.num_shards = 2;
  options.wal = &wal;
  options.wal_checkpoint_points = 1u << 20;  // never by threshold
  FleetEngine engine(options, sink);
  engine.IngestBatch(fleet.feed);

  // Mid-run durability barrier: everything emitted so far must be in the
  // WAL afterwards, with sessions still live.
  engine.CheckpointWal();
  ASSERT_TRUE(wal.Sync().ok());
  const uint64_t after_barrier = wal.stats().points_appended;
  EXPECT_GT(after_barrier, 0u);

  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.wal_points, stats.key_points_emitted);
  EXPECT_GE(stats.wal_points, after_barrier);
}

TEST(KeyPointWalFleetTest, TrajectoryStoreRestoresFromReplay) {
  // The full crash-recovery arc: fleet -> WAL -> (crash) -> recover ->
  // RestoreFromWal, with the rebuilt store populated per session.
  const FleetDataset fleet = BuildFleetDataset(5, 0.05, 4244);
  KeyPointWalOptions wal_options;
  wal_options.dir = FreshDir("wal_fleet_restore");
  KeyPointWal wal(wal_options);
  ASSERT_TRUE(wal.Open().ok());

  KeyCollectSink sink;
  FleetEngineOptions options;
  options.algorithm.id = AlgorithmId::kBqs;
  options.algorithm.epsilon = 10.0;
  options.num_shards = 2;
  options.wal = &wal;
  options.wal_checkpoint_points = 16;
  {
    FleetEngine engine(options, sink);
    engine.IngestBatch(fleet.feed);
    engine.FinishAll();
  }
  ASSERT_TRUE(wal.Close().ok());

  const auto recovered = WalReader::Recover(wal_options.dir);
  ASSERT_TRUE(recovered.ok());
  ASSERT_TRUE(recovered.value().report.clean());

  TrajectoryStore store;
  const auto restored = store.RestoreFromWal(recovered.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().checkpoints_applied,
            recovered.value().checkpoints.size());
  std::size_t total_points = 0;
  for (const auto& [device, keys] : sink.keys()) {
    (void)device;
    total_points += keys.size();
  }
  EXPECT_EQ(restored.value().points_restored, total_points);
  // One session per device, each with >= 2 key points on these datasets.
  EXPECT_EQ(restored.value().trajectories_appended, sink.keys().size());
  EXPECT_EQ(restored.value().short_trajectories, 0u);
  EXPECT_GT(store.segment_count(), 0u);
}

}  // namespace
}  // namespace bqs
