// Status / Result error-handling plumbing.
#include "common/status.h"

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("epsilon must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "epsilon must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be positive");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kIoError,
        StatusCode::kCorruption, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsFirst() { return Status::IoError("disk"); }

Status Propagates() {
  BQS_RETURN_NOT_OK(FailsFirst());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  const Status s = Propagates();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace bqs
