// Crash sweep for the compaction state machine: kill the compactor at
// EVERY state transition (kCompactionCrashAt param = transition ordinal)
// and at every manifest truncation offset, then prove recovery returns
// the exact acked prefix — no duplicates, no losses — and that a restarted
// compactor finishes the job.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "storage/compaction.h"
#include "storage/keypoint_wal.h"
#include "storage/manifest.h"

namespace bqs {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<KeyPoint> MakeKeys(uint64_t start_index, int n, double t0) {
  std::vector<KeyPoint> keys;
  for (int i = 0; i < n; ++i) {
    KeyPoint k;
    k.index = start_index + static_cast<uint64_t>(i);
    k.point.t = t0 + i * 2.0;
    k.point.pos = {t0 + i * 7.5, -t0 + i * 1.25};
    keys.push_back(k);
  }
  return keys;
}

/// Builds the template WAL once: multiple sealed segments, two devices.
void BuildTemplateWal(const std::string& dir) {
  KeyPointWalOptions options;
  options.dir = dir;
  options.segment_bytes = 256;
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  for (int c = 0; c < 8; ++c) {
    ASSERT_TRUE(wal.Append(1 + static_cast<DeviceId>(c % 2),
                           MakeKeys(static_cast<uint64_t>(c) * 10, 4,
                                    25.0 * c))
                    .ok());
  }
  ASSERT_TRUE(wal.Close().ok());
}

void CopyDir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::create_directories(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

/// The invariant every crash point must preserve: RecoverStore returns the
/// acked checkpoints exactly once each, in seq order.
void ExpectExactRecovery(const std::string& wal_dir,
                         const std::string& block_dir,
                         const std::vector<wal::WalCheckpoint>& acked,
                         const std::string& context) {
  Result<StoreRecovery> r = RecoverStore(wal_dir, block_dir);
  ASSERT_TRUE(r.ok()) << context << ": " << r.status().message();
  const std::vector<wal::WalCheckpoint>& got = r.value().wal.checkpoints;
  std::set<uint64_t> seqs;
  for (const wal::WalCheckpoint& c : got) {
    EXPECT_TRUE(seqs.insert(c.seq).second)
        << context << ": duplicate seq " << c.seq;
  }
  ASSERT_EQ(got.size(), acked.size()) << context;
  for (std::size_t i = 0; i < acked.size(); ++i) {
    EXPECT_TRUE(got[i] == acked[i]) << context << ": checkpoint " << i;
  }
}

TEST(CompactionCrashSweepTest, EveryTransitionRecoversTheExactAckedPrefix) {
  const std::string tmpl = FreshDir("crash_sweep_template");
  BuildTemplateWal(tmpl);
  Result<WalRecovery> baseline = WalReader::Recover(tmpl);
  ASSERT_TRUE(baseline.ok());
  const std::vector<wal::WalCheckpoint>& acked = baseline.value().checkpoints;
  ASSERT_EQ(acked.size(), 8u);

  bool completed = false;
  uint64_t crashes = 0;
  const uint64_t kSweepCap = 64;  // far above the real transition count
  for (uint64_t t = 0; t < kSweepCap && !completed; ++t) {
    const std::string wal_dir =
        FreshDir("crash_sweep_wal_" + std::to_string(t));
    const std::string block_dir =
        FreshDir("crash_sweep_blk_" + std::to_string(t));
    CopyDir(tmpl, wal_dir);
    const std::string context = "crash at transition " + std::to_string(t);

    FaultInjector injector(/*seed=*/11);
    injector.Arm(FaultSite::kCompactionCrashAt, /*probability=*/1.0,
                 /*max_fires=*/1, /*param=*/t);
    CompactionOptions options;
    options.wal_dir = wal_dir;
    options.block_dir = block_dir;
    options.fault_injector = &injector;
    {
      Compactor compactor(options);
      const Status st = compactor.CompactOnce();
      if (st.ok()) {
        // The crash point lies beyond the last transition: sweep is done.
        completed = true;
        EXPECT_EQ(compactor.stats().runs_completed, 1u);
      } else {
        ++crashes;
        EXPECT_EQ(compactor.stats().runs_crashed, 1u) << context;
        EXPECT_EQ(compactor.stats().runs_failed, 0u) << context;
        EXPECT_FALSE(compactor.degraded()) << context;  // crash ≠ ENOSPC
      }
    }

    // Whatever state the death left behind, recovery is exact...
    ExpectExactRecovery(wal_dir, block_dir, acked, context);

    // ...and a restarted compactor finishes the drain, after which
    // recovery is exact again, off blocks alone.
    CompactionOptions clean = options;
    clean.fault_injector = nullptr;
    Compactor restarted(clean);
    ASSERT_TRUE(restarted.CompactOnce().ok()) << context;
    ExpectExactRecovery(wal_dir, block_dir, acked, context + " + restart");
    Result<StoreRecovery> drained = RecoverStore(wal_dir, block_dir);
    ASSERT_TRUE(drained.ok());
    EXPECT_EQ(drained.value().report.checkpoints_from_wal, 0u) << context;
    EXPECT_EQ(drained.value().wal.next_seq, acked.back().seq + 1) << context;
  }
  ASSERT_TRUE(completed) << "sweep never reached a crash-free run";
  // The machine really has many distinct transitions: T0/T1, block
  // publication gates, manifest gates, one per segment delete.
  EXPECT_GE(crashes, 8u);
}

TEST(CompactionCrashSweepTest, EveryManifestTruncationFallsBackExactly) {
  const std::string wal_dir = FreshDir("manifest_trunc_wal");
  const std::string block_dir = FreshDir("manifest_trunc_blk");
  BuildTemplateWal(wal_dir);
  Result<WalRecovery> baseline = WalReader::Recover(wal_dir);
  ASSERT_TRUE(baseline.ok());
  const std::vector<wal::WalCheckpoint>& acked = baseline.value().checkpoints;

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  Compactor compactor(options);
  ASSERT_TRUE(compactor.CompactOnce().ok());
  // The WAL is fully drained: recovery below leans on blocks alone.
  ASSERT_EQ(compactor.stats().segments_deleted,
            compactor.stats().segments_consumed);

  std::string manifest_bytes;
  {
    std::ifstream in(block_dir + "/MANIFEST", std::ios::binary);
    ASSERT_TRUE(in.good());
    manifest_bytes.assign(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
  }
  ASSERT_GT(manifest_bytes.size(), 16u);

  for (std::size_t cut = 0; cut < manifest_bytes.size(); ++cut) {
    {
      std::ofstream out(block_dir + "/MANIFEST",
                        std::ios::binary | std::ios::trunc);
      out.write(manifest_bytes.data(), static_cast<std::streamsize>(cut));
    }
    const std::string context = "manifest truncated to " +
                                std::to_string(cut) + " bytes";
    Result<StoreRecovery> r = RecoverStore(wal_dir, block_dir);
    ASSERT_TRUE(r.ok()) << context;
    EXPECT_TRUE(r.value().report.manifest_corrupt) << context;
    ExpectExactRecovery(wal_dir, block_dir, acked, context);
  }

  // Restore the intact manifest: recovery is clean again.
  {
    std::ofstream out(block_dir + "/MANIFEST",
                      std::ios::binary | std::ios::trunc);
    out.write(manifest_bytes.data(),
              static_cast<std::streamsize>(manifest_bytes.size()));
  }
  Result<StoreRecovery> r = RecoverStore(wal_dir, block_dir);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().report.clean());
  ExpectExactRecovery(wal_dir, block_dir, acked, "restored manifest");
}

}  // namespace
}  // namespace bqs
