// The crash-point sweep: truncate a WAL segment at EVERY byte offset and
// prove recovery returns exactly the acked prefix — bit-exact — with the
// loss accounted to the right reason and not one byte unexplained.
//
// This is the durability contract's exhaustive check. Append acks carry
// end_offset (the segment size once the record is fully encoded), so for
// any truncation point c the expected outcome is computable:
//   c == 0                -> empty file, clean;
//   0 < c < header        -> unreadable header, the whole file is dropped;
//   cut on a record edge  -> clean replay of everything up to the edge;
//   1-7 bytes past an edge-> partial record header (short_header);
//   8+ bytes past an edge -> a torn record (torn_tail).
// In every case: recovered checkpoints == the acked prefix, and
//   header + sum(recovered record bytes) + bytes_dropped == c.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "storage/keypoint_wal.h"
#include "storage/wal_format.h"

namespace bqs {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<KeyPoint> MakeKeys(uint64_t start_index, int n, double base) {
  std::vector<KeyPoint> keys;
  for (int i = 0; i < n; ++i) {
    KeyPoint k;
    k.index = start_index + static_cast<uint64_t>(i) * 3;
    k.point.t = base + i * 5.5;
    k.point.pos = {base * 3.0 + i * 17.25, base - i * 9.125};
    keys.push_back(k);
  }
  return keys;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WritePrefix(const std::string& path, const std::string& bytes,
                 std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(n));
  ASSERT_TRUE(out.good()) << path;
}

/// One acked append with everything the sweep needs to predict recovery.
struct AckedRecord {
  wal::WalCheckpoint checkpoint;  ///< Quantized, as recovery must return it.
  std::size_t end_offset = 0;     ///< Segment size after this record.
};

/// Writes a single-segment WAL under `policy` and returns the acked
/// records plus the full segment image.
void BuildAckedLog(WalDurability policy, const std::string& dir,
                   std::vector<AckedRecord>* acked, std::string* image) {
  KeyPointWalOptions options;
  options.dir = dir;
  options.durability = policy;
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  for (int c = 0; c < 8; ++c) {
    const DeviceId device = 1 + static_cast<DeviceId>(c % 2);
    const std::vector<KeyPoint> keys =
        MakeKeys(static_cast<uint64_t>(c) * 40, 2 + c % 3, c * 11.0);
    const auto ack = wal.Append(device, keys);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    ASSERT_EQ(ack.value().segment_index, 1u) << "sweep needs one segment";
    AckedRecord record;
    record.checkpoint.device = device;
    record.checkpoint.seq = ack.value().seq;
    for (const KeyPoint& k : keys) {
      record.checkpoint.points.push_back(wal::Quantize(k, options.quant));
    }
    record.end_offset = static_cast<std::size_t>(ack.value().end_offset);
    acked->push_back(std::move(record));
  }
  ASSERT_TRUE(wal.Close().ok());

  const auto files = ListWalSegments(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files.value().size(), 1u);
  *image = ReadFile(files.value()[0].path);
  ASSERT_EQ(image->size(), acked->back().end_offset)
      << "the last ack's end_offset must be the file size";
}

/// Asserts recovery of `dir` against truncation point `c` of a log whose
/// acked records are `acked`.
void CheckRecoveryAtCut(const std::string& dir, std::size_t c,
                        const std::vector<AckedRecord>& acked) {
  const auto recovered = WalReader::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const WalRecovery& r = recovered.value();
  EXPECT_EQ(r.report.segments_scanned, 1u);

  if (c == 0) {
    // Crash before any byte reached the file: clean and empty.
    EXPECT_TRUE(r.report.clean()) << "cut " << c;
    EXPECT_TRUE(r.checkpoints.empty());
    return;
  }
  if (c < wal::kSegmentHeaderBytes) {
    // Torn mid-header: nothing in the segment can be framed.
    EXPECT_EQ(r.report.segments_bad_header, 1u) << "cut " << c;
    EXPECT_EQ(r.report.bytes_dropped, c) << "cut " << c;
    EXPECT_TRUE(r.checkpoints.empty()) << "cut " << c;
    return;
  }

  // Expected durable prefix: every ack whose record fully precedes c.
  std::vector<wal::WalCheckpoint> expected;
  std::size_t edge = wal::kSegmentHeaderBytes;
  for (const AckedRecord& record : acked) {
    if (record.end_offset <= c) {
      expected.push_back(record.checkpoint);
      edge = record.end_offset;
    }
  }
  EXPECT_EQ(r.checkpoints, expected) << "cut " << c;
  EXPECT_EQ(r.report.records_recovered, expected.size()) << "cut " << c;
  EXPECT_EQ(r.report.segments_bad_header, 0u) << "cut " << c;
  EXPECT_EQ(r.report.bad_crc, 0u) << "cut " << c;
  EXPECT_EQ(r.report.bad_varint, 0u) << "cut " << c;

  const std::size_t rem = c - edge;
  if (rem == 0) {
    EXPECT_TRUE(r.report.clean()) << "cut " << c;
  } else if (rem < wal::kRecordHeaderBytes) {
    EXPECT_EQ(r.report.short_header, 1u) << "cut " << c;
    EXPECT_EQ(r.report.torn_tail, 0u) << "cut " << c;
  } else {
    EXPECT_EQ(r.report.torn_tail, 1u) << "cut " << c;
    EXPECT_EQ(r.report.short_header, 0u) << "cut " << c;
  }
  // The accounting identity: every byte is in the header, a recovered
  // record, or bytes_dropped.
  EXPECT_EQ(wal::kSegmentHeaderBytes + (edge - wal::kSegmentHeaderBytes) +
                r.report.bytes_dropped,
            c)
      << "cut " << c;

  // next_seq is safe to reopen with: one past the last recovered record
  // (or the header's first_seq when nothing was recovered).
  const uint64_t expect_seq = expected.empty() ? 1 : expected.back().seq + 1;
  EXPECT_EQ(r.next_seq, expect_seq) << "cut " << c;
}

class WalCrashSweepTest : public ::testing::TestWithParam<WalDurability> {};

TEST_P(WalCrashSweepTest, EveryTruncationOffsetRecoversTheAckedPrefix) {
  const WalDurability policy = GetParam();
  const std::string source_dir =
      FreshDir("sweep_src_" +
               std::to_string(static_cast<int>(policy)));
  std::vector<AckedRecord> acked;
  std::string image;
  BuildAckedLog(policy, source_dir, &acked, &image);
  ASSERT_GT(image.size(), wal::kSegmentHeaderBytes);

  const std::string sweep_dir =
      FreshDir("sweep_cut_" + std::to_string(static_cast<int>(policy)));
  std::filesystem::create_directories(sweep_dir);
  const std::string segment_path = sweep_dir + "/wal-000001.log";
  for (std::size_t c = 0; c <= image.size(); ++c) {
    WritePrefix(segment_path, image, c);
    CheckRecoveryAtCut(sweep_dir, c, acked);
    if (::testing::Test::HasFailure()) {
      FAIL() << "sweep stopped at cut " << c << " of " << image.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, WalCrashSweepTest,
    ::testing::Values(WalDurability::kNone, WalDurability::kFlushEveryBatch,
                      WalDurability::kFsyncEveryBatch,
                      WalDurability::kGroupCommit),
    [](const ::testing::TestParamInfo<WalDurability>& param_info) {
      switch (param_info.param) {
        case WalDurability::kNone: return "None";
        case WalDurability::kFlushEveryBatch: return "FlushEveryBatch";
        case WalDurability::kFsyncEveryBatch: return "FsyncEveryBatch";
        case WalDurability::kGroupCommit: return "GroupCommit";
      }
      return "Unknown";
    });

TEST(WalCrashSweepMultiSegmentTest, ClosedSegmentsSurviveALiveSegmentTear) {
  // Two segments; the first is closed and complete. Truncating the live
  // (last) segment at every offset must never cost a record of the closed
  // one.
  const std::string source_dir = FreshDir("sweep_multi_src");
  std::vector<AckedRecord> acked;
  {
    KeyPointWalOptions options;
    options.dir = source_dir;
    options.segment_bytes = 160;  // a few records per segment
    KeyPointWal wal(options);
    ASSERT_TRUE(wal.Open().ok());
    for (int c = 0; c < 10; ++c) {
      const std::vector<KeyPoint> keys =
          MakeKeys(static_cast<uint64_t>(c) * 20, 3, c * 7.0);
      const auto ack = wal.Append(9, keys);
      ASSERT_TRUE(ack.ok());
      AckedRecord record;
      record.checkpoint.device = 9;
      record.checkpoint.seq = ack.value().seq;
      for (const KeyPoint& k : keys) {
        record.checkpoint.points.push_back(wal::Quantize(k, options.quant));
      }
      record.end_offset = static_cast<std::size_t>(ack.value().end_offset);
      // Tag which segment the ack landed in via segment_index.
      record.end_offset |= ack.value().segment_index << 32;
      acked.push_back(std::move(record));
    }
    ASSERT_TRUE(wal.Close().ok());
  }

  const auto files = ListWalSegments(source_dir);
  ASSERT_TRUE(files.ok());
  ASSERT_GE(files.value().size(), 2u) << "rotation must have happened";
  const WalSegmentFile& last = files.value().back();
  const std::string last_image = ReadFile(last.path);
  const uint64_t last_index = last.index;

  // Checkpoints in closed segments: recovered at every cut. Checkpoints in
  // the last segment: recovered iff their record precedes the cut.
  const std::string last_name =
      std::filesystem::path(last.path).filename().string();
  for (std::size_t c = 0; c <= last_image.size(); ++c) {
    WritePrefix(last.path, last_image, c);
    const auto recovered = WalReader::Recover(source_dir);
    ASSERT_TRUE(recovered.ok());
    std::vector<wal::WalCheckpoint> expected;
    for (const AckedRecord& record : acked) {
      const uint64_t segment = record.end_offset >> 32;
      const std::size_t end = record.end_offset & 0xffffffffu;
      if (segment < last_index || end <= c) {
        expected.push_back(record.checkpoint);
      }
    }
    EXPECT_EQ(recovered.value().checkpoints, expected)
        << "cut " << c << " in " << last_name;
    // Loss, when present, is confined to the live segment's tail.
    EXPECT_EQ(recovered.value().report.bad_crc, 0u);
    EXPECT_EQ(recovered.value().report.segments_bad_header,
              c != 0 && c < wal::kSegmentHeaderBytes ? 1u : 0u);
  }
  // Restore the full image so a rerun in the same temp dir starts clean.
  WritePrefix(last.path, last_image, last_image.size());
}

TEST(WalCrashSweepInjectedTest, TornWriteParamSweepMatchesByteTruncation) {
  // The writer-side version of the sweep: instead of truncating the file
  // afterwards, the injected short write tears the doomed record at every
  // possible byte via kWriteShortAtByte's param. The two sweeps must agree:
  // recovery returns the acked prefix, and the cut position picks the
  // reason (record edge -> clean, < 8 -> short_header, else torn_tail).
  //
  // First, measure the doomed record's size with a clean run.
  std::size_t record_bytes = 0;
  std::vector<AckedRecord> acked_prefix;
  wal::WalCheckpoint doomed_checkpoint;
  {
    const std::string dir = FreshDir("sweep_inject_measure");
    std::vector<AckedRecord> acked;
    std::string image;
    BuildAckedLog(WalDurability::kFlushEveryBatch, dir, &acked, &image);
    record_bytes = acked[3].end_offset - acked[2].end_offset;
    acked_prefix.assign(acked.begin(), acked.begin() + 3);
    doomed_checkpoint = acked[3].checkpoint;
  }

  for (std::size_t cut = 0; cut <= record_bytes; ++cut) {
    FaultInjector injector(1000 + static_cast<uint64_t>(cut));
    const std::string dir = FreshDir("sweep_inject");
    KeyPointWalOptions options;
    options.dir = dir;
    options.durability = WalDurability::kFlushEveryBatch;
    options.fault_injector = &injector;
    KeyPointWal wal(options);
    ASSERT_TRUE(wal.Open().ok());
    // Same feed as BuildAckedLog so record sizes line up.
    for (int c = 0; c < 3; ++c) {
      const DeviceId device = 1 + static_cast<DeviceId>(c % 2);
      ASSERT_TRUE(
          wal.Append(device, MakeKeys(static_cast<uint64_t>(c) * 40,
                                      2 + c % 3, c * 11.0))
              .ok());
    }
    injector.Arm(FaultSite::kWriteShortAtByte, 1.0, /*max_fires=*/1,
                 /*param=*/cut);
    const auto doomed = wal.Append(2, MakeKeys(120, 2 + 3 % 3, 3 * 11.0));
    ASSERT_FALSE(doomed.ok()) << "cut " << cut;
    EXPECT_TRUE(wal.dead());
    ASSERT_TRUE(wal.Close().ok());

    const auto recovered = WalReader::Recover(dir);
    ASSERT_TRUE(recovered.ok());
    const WalRecovery& r = recovered.value();
    std::vector<wal::WalCheckpoint> expected;
    for (const AckedRecord& record : acked_prefix) {
      expected.push_back(record.checkpoint);
    }
    if (cut == record_bytes) {
      // The tear landed exactly past the record: it is whole on disk and
      // recovery returns it even though the writer never acked it (the
      // contract is acks-are-a-prefix, not unacked-bytes-vanish).
      expected.push_back(doomed_checkpoint);
      EXPECT_TRUE(r.report.clean()) << "cut " << cut;
    } else if (cut == 0) {
      EXPECT_TRUE(r.report.clean()) << "cut " << cut;
      EXPECT_EQ(r.report.bytes_dropped, 0u);
    } else if (cut < wal::kRecordHeaderBytes) {
      EXPECT_EQ(r.report.short_header, 1u) << "cut " << cut;
      EXPECT_EQ(r.report.bytes_dropped, cut) << "cut " << cut;
    } else {
      EXPECT_EQ(r.report.torn_tail, 1u) << "cut " << cut;
      EXPECT_EQ(r.report.bytes_dropped, cut) << "cut " << cut;
    }
    EXPECT_EQ(r.checkpoints, expected) << "cut " << cut;
  }
}

}  // namespace
}  // namespace bqs
