// Contracts the service layer's session recycling stands on:
//  - enum exhaustiveness: AlgorithmId, AlgorithmName, IsStreaming and
//    MakeStreamCompressor stay in sync (no value silently falls through),
//  - Reset() equivalence: a reused compressor is byte-identical to a fresh
//    one for every streaming algorithm (FleetEngine pools compressors and
//    Reset()s them between sessions),
//  - the sink emission path mirrors the vector path exactly.
#include <set>
#include <vector>

#include "eval/algorithms.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

// Forces a conscious update of kAllAlgorithms (and this suite) whenever the
// enum grows.
static_assert(kAlgorithmCount == 7,
              "AlgorithmId changed: update kAllAlgorithms, AlgorithmName, "
              "IsStreaming, MakeStreamCompressor and this test together");

AlgorithmConfig ConfigFor(AlgorithmId id) {
  AlgorithmConfig config;
  config.id = id;
  config.epsilon = 8.0;
  return config;
}

TEST(AlgorithmEnumTest, CanonicalListCoversEveryValueInOrder) {
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    EXPECT_EQ(kAllAlgorithms[i], static_cast<AlgorithmId>(i))
        << "kAllAlgorithms must list enum values in declaration order";
  }
}

TEST(AlgorithmEnumTest, EveryValueHasAUniqueNonEmptyName) {
  std::set<std::string_view> seen;
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    const std::string_view name = AlgorithmName(static_cast<AlgorithmId>(i));
    EXPECT_FALSE(name.empty()) << "enum value " << i << " has no name";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate algorithm name: " << name;
  }
}

TEST(AlgorithmEnumTest, MakeStreamCompressorMatchesIsStreaming) {
  for (const AlgorithmId id : kAllAlgorithms) {
    auto compressor = MakeStreamCompressor(ConfigFor(id));
    EXPECT_EQ(compressor != nullptr, IsStreaming(id))
        << AlgorithmName(id)
        << ": MakeStreamCompressor and IsStreaming disagree";
    if (compressor != nullptr) {
      EXPECT_EQ(compressor->name(), AlgorithmName(id))
          << "compressor name() diverges from AlgorithmName";
    }
  }
}

TEST(AlgorithmEnumTest, CompressorFactoryMintsConfiguredAlgorithm) {
  for (const AlgorithmId id : kAllAlgorithms) {
    CompressorFactory factory(ConfigFor(id));
    EXPECT_EQ(factory.streaming(), IsStreaming(id));
    auto compressor = factory.Make();
    ASSERT_EQ(compressor != nullptr, factory.streaming());
    if (compressor != nullptr) {
      EXPECT_EQ(compressor->name(), AlgorithmName(id));
    }
  }
}

// --- Reset() equivalence ---------------------------------------------------

std::vector<AlgorithmId> StreamingAlgorithms() {
  std::vector<AlgorithmId> out;
  for (const AlgorithmId id : kAllAlgorithms) {
    if (IsStreaming(id)) out.push_back(id);
  }
  return out;
}

TEST(ResetEquivalenceTest, ReusedCompressorMatchesFreshOne) {
  const Trajectory first = testing_util::JaggedWalk(91, 1500);
  const Trajectory second = testing_util::SmoothWalk(92, 1500);
  for (const AlgorithmId id : StreamingAlgorithms()) {
    auto fresh = MakeStreamCompressor(ConfigFor(id));
    auto reused = MakeStreamCompressor(ConfigFor(id));
    // Dirty the reused instance with a full run, then recycle it.
    const CompressedTrajectory scratch = CompressAll(*reused, first);
    ASSERT_FALSE(scratch.empty());
    const CompressedTrajectory expected = CompressAll(*fresh, second);
    const CompressedTrajectory recycled = CompressAll(*reused, second);
    EXPECT_EQ(recycled.keys, expected.keys)
        << AlgorithmName(id) << ": Reset() does not restore fresh state";
  }
}

TEST(ResetEquivalenceTest, ResetMidStreamDiscardsAllState) {
  const Trajectory first = testing_util::VonMisesWalk(93, 1200, 2.0);
  const Trajectory second = testing_util::JaggedWalk(94, 1200);
  for (const AlgorithmId id : StreamingAlgorithms()) {
    auto fresh = MakeStreamCompressor(ConfigFor(id));
    auto reused = MakeStreamCompressor(ConfigFor(id));
    // Abandon a half-ingested stream (open segment, warm buffers) without
    // Finish() — the harshest recycling shape.
    std::vector<KeyPoint> discard;
    reused->PushBatch(
        std::span<const TrackPoint>(first.data(), first.size() / 2),
        &discard);
    const CompressedTrajectory expected = CompressAll(*fresh, second);
    const CompressedTrajectory recycled = CompressAll(*reused, second);
    EXPECT_EQ(recycled.keys, expected.keys)
        << AlgorithmName(id) << ": mid-stream Reset() leaks state";
  }
}

// --- Sink emission path ----------------------------------------------------

TEST(SinkPathTest, SinkEmissionMirrorsVectorEmission) {
  const Trajectory stream = testing_util::JaggedWalk(95, 2000);
  for (const AlgorithmId id : StreamingAlgorithms()) {
    auto vector_path = MakeStreamCompressor(ConfigFor(id));
    const CompressedTrajectory expected = CompressAll(*vector_path, stream);

    auto sink_path = MakeStreamCompressor(ConfigFor(id));
    sink_path->Reset();
    std::vector<KeyPoint> got;
    VectorSink sink(&got);
    // Mixed single-point and batched pushes through the sink adapter.
    const std::size_t half = stream.size() / 2;
    for (std::size_t i = 0; i < half; ++i) sink_path->PushTo(stream[i], sink);
    sink_path->PushBatchTo(
        std::span<const TrackPoint>(stream.data() + half,
                                    stream.size() - half),
        sink);
    sink_path->FinishTo(sink);
    EXPECT_EQ(got, expected.keys)
        << AlgorithmName(id) << ": sink path diverges from vector path";
  }
}

TEST(SinkPathTest, CompressedSizeHintIsPositiveAndSublinear) {
  EXPECT_GE(CompressedSizeHint(0), 2u);
  EXPECT_GE(CompressedSizeHint(1), 2u);
  EXPECT_EQ(CompressedSizeHint(80), 12u);
  EXPECT_LT(CompressedSizeHint(100000), 100000u / 4);
}

}  // namespace
}  // namespace bqs
