// Property tests for the deviation-bound theorems (5.2-5.5 + Eq. 11): the
// computed <d_lb, d_ub> must sandwich the exact maximum deviation for any
// point set summarized by a QuadrantBound and any end point. These bounds
// are the entire soundness story of FBQS, so the sampling here is heavy.
#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"
#include "core/quadrant_bound.h"
#include "geometry/angle.h"
#include "geometry/line2.h"

namespace bqs {
namespace {

struct Config {
  int quadrant;
  std::vector<Vec2> points;
  Vec2 end;
};

Vec2 RandomPointInQuadrant(Rng& rng, int quadrant, double lo, double hi) {
  const QuadrantRange range = QuadrantAngles(quadrant);
  const double theta = rng.Uniform(range.start, range.end * 0.999999);
  const double r = rng.Uniform(lo, hi);
  return Vec2{r * std::cos(theta), r * std::sin(theta)};
}

double ExactMax(const std::vector<Vec2>& points, Vec2 end,
                DistanceMetric metric) {
  double best = 0.0;
  for (const Vec2& p : points) {
    best = std::max(best, PointDeviation(p, {0.0, 0.0}, end, metric));
  }
  return best;
}

class BoundsPropertyTest
    : public ::testing::TestWithParam<std::tuple<DistanceMetric, int>> {};

TEST_P(BoundsPropertyTest, SandwichesExactDeviation) {
  const auto [metric, quadrant] = GetParam();
  Rng rng(1234u + static_cast<uint64_t>(quadrant) * 7u +
          (metric == DistanceMetric::kPointToLine ? 0u : 1000u));

  int in_quadrant_cases = 0;
  int out_quadrant_cases = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    QuadrantBound qb(quadrant);
    std::vector<Vec2> points;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      const Vec2 p = RandomPointInQuadrant(rng, quadrant, 0.5, 500.0);
      points.push_back(p);
      qb.Add(p);
    }
    // End points everywhere: same quadrant, any direction, short, long.
    Vec2 end;
    switch (iter % 4) {
      case 0:
        end = RandomPointInQuadrant(rng, quadrant, 1.0, 800.0);
        break;
      case 1:
        end = Vec2{rng.Uniform(-800.0, 800.0), rng.Uniform(-800.0, 800.0)};
        break;
      case 2:
        end = RandomPointInQuadrant(rng, (quadrant + 2) % 4, 1.0, 800.0);
        break;
      default:
        end = Vec2{rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)};
        break;
    }
    if (end == Vec2{0.0, 0.0}) end = Vec2{1.0, 1.0};
    if (LineInQuadrant(end.Angle(), quadrant)) {
      ++in_quadrant_cases;
    } else {
      ++out_quadrant_cases;
    }

    const double exact = ExactMax(points, end, metric);
    const DeviationBounds bounds = QuadrantDeviationBounds(qb, end, metric);

    const double tol = 1e-7 * (1.0 + exact);
    EXPECT_LE(bounds.lower, exact + tol)
        << "lower bound too high (quadrant " << quadrant << ", iter " << iter
        << ")";
    EXPECT_GE(bounds.upper, exact - tol)
        << "upper bound too low (quadrant " << quadrant << ", iter " << iter
        << ")";
    EXPECT_LE(bounds.lower, bounds.upper + tol);

    // Theorem 5.2 box bounds must sandwich as well (and be no tighter on
    // the upper side than the significant-point bound is sound).
    const DeviationBounds box = BoxDeviationBounds(qb, end, metric);
    EXPECT_LE(box.lower, exact + tol);
    EXPECT_GE(box.upper, exact - tol);
  }
  // The sweep must exercise both theorem branches.
  EXPECT_GT(in_quadrant_cases, 100);
  EXPECT_GT(out_quadrant_cases, 100);
}

INSTANTIATE_TEST_SUITE_P(
    AllQuadrantsBothMetrics, BoundsPropertyTest,
    ::testing::Combine(::testing::Values(DistanceMetric::kPointToLine,
                                         DistanceMetric::kPointToSegment),
                       ::testing::Values(0, 1, 2, 3)),
    [](const auto& naming_info) {
      const DistanceMetric metric = std::get<0>(naming_info.param);
      const int quadrant = std::get<1>(naming_info.param);
      return std::string(metric == DistanceMetric::kPointToLine ? "Line"
                                                                : "Segment") +
             "Q" + std::to_string(quadrant);
    });

TEST(BoundsTest, ThinCollinearBoxesStaySound) {
  // Regression for the Eq. (8) soundness gap: near-collinear point runs
  // produce hair-thin boxes whose bounding rays exit through the long side
  // immediately; the upper bound must still cover the far corner. This is
  // the shape data-centric rotation feeds the bounds on straight runs.
  Rng rng(4242);
  for (DistanceMetric metric : {DistanceMetric::kPointToLine,
                                DistanceMetric::kPointToSegment}) {
    for (int iter = 0; iter < 3000; ++iter) {
      const int quadrant = static_cast<int>(rng.UniformInt(0, 3));
      const QuadrantRange range = QuadrantAngles(quadrant);
      const double axis =
          rng.Uniform(range.start + 1e-4, range.end - 1e-4);
      QuadrantBound qb(quadrant);
      std::vector<Vec2> points;
      const int n = static_cast<int>(rng.UniformInt(2, 25));
      const double jitter = rng.Bernoulli(0.5) ? 1e-13 : 1e-9;
      for (int i = 0; i < n; ++i) {
        const double r = rng.Uniform(5.0, 450.0);
        Vec2 p{r * std::cos(axis), r * std::sin(axis)};
        p += Vec2{rng.Uniform(-jitter, jitter),
                  rng.Uniform(-jitter, jitter)};
        if (QuadrantOf(p) != quadrant) continue;
        points.push_back(p);
        qb.Add(p);
      }
      if (qb.empty()) continue;
      // End point slightly off the run axis (the failing configuration),
      // or far off it.
      const double offset =
          rng.Bernoulli(0.5) ? rng.Uniform(-0.08, 0.08)
                             : rng.Uniform(-1.2, 1.2);
      const double er = rng.Uniform(10.0, 600.0);
      const Vec2 end{er * std::cos(axis + offset),
                     er * std::sin(axis + offset)};
      const double exact = ExactMax(points, end, metric);
      const DeviationBounds bounds = QuadrantDeviationBounds(qb, end, metric);
      const double tol = 1e-7 * (1.0 + exact);
      EXPECT_LE(bounds.lower, exact + tol);
      EXPECT_GE(bounds.upper, exact - tol);
    }
  }
}

TEST(BoundsTest, DegenerateEndUsesCornerBounds) {
  // With end == origin the deviation collapses to |p - s|; the bounds must
  // remain a valid sandwich of max |p|.
  Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    const int quadrant = static_cast<int>(rng.UniformInt(0, 3));
    QuadrantBound qb(quadrant);
    std::vector<Vec2> points;
    const int n = static_cast<int>(rng.UniformInt(1, 20));
    for (int i = 0; i < n; ++i) {
      const Vec2 p = RandomPointInQuadrant(rng, quadrant, 0.5, 100.0);
      points.push_back(p);
      qb.Add(p);
    }
    const double exact = ExactMax(points, {0.0, 0.0},
                                  DistanceMetric::kPointToLine);
    const DeviationBounds bounds =
        QuadrantDeviationBounds(qb, {0.0, 0.0}, DistanceMetric::kPointToLine);
    EXPECT_LE(bounds.lower, exact + 1e-9);
    EXPECT_GE(bounds.upper, exact - 1e-9);
  }
}

TEST(BoundsTest, SinglePointBoundsAreExact) {
  // One buffered point: box and lines collapse onto it, so both bounds
  // equal its distance exactly.
  QuadrantBound qb(0);
  const Vec2 p{30.0, 40.0};
  qb.Add(p);
  const Vec2 end{100.0, 10.0};
  const double exact =
      PointToLineDistance(p, {0.0, 0.0}, end);
  const DeviationBounds bounds =
      QuadrantDeviationBounds(qb, end, DistanceMetric::kPointToLine);
  EXPECT_NEAR(bounds.lower, exact, 1e-9);
  EXPECT_NEAR(bounds.upper, exact, 1e-9);
}

TEST(BoundsTest, TightnessBeatsBoxBoundsOnAverage) {
  // The significant-point bounds should be tighter (smaller gap) than the
  // plain Theorem 5.2 box bounds on typical data — this is the reason the
  // bounding lines exist.
  Rng rng(99);
  double gap_sig = 0.0;
  double gap_box = 0.0;
  for (int iter = 0; iter < 2000; ++iter) {
    QuadrantBound qb(0);
    const int n = static_cast<int>(rng.UniformInt(3, 30));
    for (int i = 0; i < n; ++i) {
      qb.Add(RandomPointInQuadrant(rng, 0, 10.0, 200.0));
    }
    const Vec2 end = RandomPointInQuadrant(rng, 0, 50.0, 400.0);
    const auto sig =
        QuadrantDeviationBounds(qb, end, DistanceMetric::kPointToLine);
    const auto box =
        BoxDeviationBounds(qb, end, DistanceMetric::kPointToLine);
    gap_sig += sig.upper - sig.lower;
    gap_box += box.upper - box.lower;
  }
  EXPECT_LT(gap_sig, gap_box);
}

TEST(BoundsTest, FastBoundsMatchReferenceAcrossMetricsAndModes) {
  // The fast kernel's squared/cross-domain composition must map back onto
  // the reference's metre-domain bounds through the (monotone) sqrt /
  // divide-by-|end|, for every metric x mode branch. This is the bound-
  // level half of the byte-identical guarantee; the engine-level half is
  // the kernel differential in bqs_compressor_test.
  Rng rng(41);
  int checked = 0;
  for (int trial = 0; trial < 30000; ++trial) {
    const int quadrant = trial % 4;
    QuadrantBound reference_qb(quadrant);
    QuadrantBound fast_qb(quadrant);
    const int n = 1 + trial % 7;
    for (int i = 0; i < n; ++i) {
      const Vec2 p = RandomPointInQuadrant(rng, quadrant, 0.01, 300.0);
      reference_qb.Add(p);
      fast_qb.AddCross(p);
    }
    const Vec2 end{rng.Uniform(-250.0, 350.0), rng.Uniform(-150.0, 150.0)};
    if (end == Vec2{0.0, 0.0}) continue;
    const int end_q = QuadrantOf(end);
    for (const DistanceMetric metric :
         {DistanceMetric::kPointToLine, DistanceMetric::kPointToSegment}) {
      for (const BoundsMode mode :
           {BoundsMode::kSound, BoundsMode::kPaperEq8}) {
        const DeviationBounds reference =
            QuadrantDeviationBounds(reference_qb, end, metric, mode);
        const bool in_q = metric == DistanceMetric::kPointToLine
                              ? (end_q & 1) == (quadrant & 1)
                              : end_q == quadrant;
        const FastQuadrantBounds fast =
            QuadrantFastBounds(fast_qb, end, in_q, metric, mode);
        if (!fast.ok) continue;  // guard band: the engine would fall back.
        ++checked;
        double lower;
        double upper;
        if (metric == DistanceMetric::kPointToLine) {
          const double len = end.Norm();
          lower = fast.lower / len;
          upper = fast.upper / len;
        } else {
          lower = std::sqrt(fast.lower);
          upper = std::sqrt(fast.upper);
        }
        ASSERT_TRUE(ApproxEqual(lower, reference.lower, 1e-9, 1e-9))
            << "trial " << trial << " lower " << lower << " vs "
            << reference.lower;
        ASSERT_TRUE(ApproxEqual(upper, reference.upper, 1e-9, 1e-9))
            << "trial " << trial << " upper " << upper << " vs "
            << reference.upper;
      }
    }
  }
  // The guard band must be the rare exception, not the rule.
  EXPECT_GT(checked, 100000);
}

TEST(BoundsTest, FastBoundsDecisionsMatchReferenceAgainstEpsilon) {
  // Decision-level agreement: comparing the fast values against the
  // squared threshold gives the reference's include/split verdict whenever
  // the comparison is outside the ~1e-12 guard band (inside it the engine
  // recomputes with the reference, so any verdict is consistent).
  Rng rng(42);
  for (int trial = 0; trial < 20000; ++trial) {
    const int quadrant = trial % 4;
    QuadrantBound qb(quadrant);
    for (int i = 0; i < 1 + trial % 5; ++i) {
      qb.Add(RandomPointInQuadrant(rng, quadrant, 0.1, 120.0));
    }
    const Vec2 end{rng.Uniform(-120.0, 200.0), rng.Uniform(-90.0, 90.0)};
    if (end == Vec2{0.0, 0.0}) continue;
    const double eps = rng.Uniform(0.5, 60.0);
    const int end_q = QuadrantOf(end);
    const DeviationBounds reference =
        QuadrantDeviationBounds(qb, end, DistanceMetric::kPointToLine);
    const FastQuadrantBounds fast = QuadrantFastBounds(
        qb, end, (end_q & 1) == (quadrant & 1), DistanceMetric::kPointToLine,
        BoundsMode::kSound);
    if (!fast.ok) continue;
    const double threshold = eps * eps * end.NormSq();
    const double upper_sq = fast.upper * fast.upper;
    const double lower_sq = fast.lower * fast.lower;
    if (upper_sq <= threshold * (1.0 - 1e-12)) {
      EXPECT_LE(reference.upper, eps) << "trial " << trial;
    } else if (upper_sq > threshold * (1.0 + 1e-12)) {
      EXPECT_GT(reference.upper, eps) << "trial " << trial;
    }
    if (lower_sq > threshold * (1.0 + 1e-12)) {
      EXPECT_GT(reference.lower, eps) << "trial " << trial;
    } else if (lower_sq <= threshold * (1.0 - 1e-12)) {
      EXPECT_LE(reference.lower, eps) << "trial " << trial;
    }
  }
}

TEST(BoundsTest, MergeMaxAggregatesBothSides) {
  DeviationBounds a{1.0, 5.0};
  const DeviationBounds b{2.0, 3.0};
  a.MergeMax(b);
  EXPECT_DOUBLE_EQ(a.lower, 2.0);
  EXPECT_DOUBLE_EQ(a.upper, 5.0);
}

}  // namespace
}  // namespace bqs
