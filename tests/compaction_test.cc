// Compaction functional tests: WAL segments drain into columnar blocks
// behind an atomic manifest, recovery off blocks ∪ WAL tail is exact,
// failures degrade (ENOSPC) or retry (rename) per policy, and range
// queries answer off the compressed blocks decoding only what matches.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "storage/compaction.h"
#include "storage/keypoint_wal.h"
#include "storage/manifest.h"

namespace bqs {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<KeyPoint> MakeKeys(uint64_t start_index, int n, double t0,
                               double x0, double y0) {
  std::vector<KeyPoint> keys;
  for (int i = 0; i < n; ++i) {
    KeyPoint k;
    k.index = start_index + static_cast<uint64_t>(i);
    k.point.t = t0 + i * 5.0;
    k.point.pos = {x0 + i * 3.25, y0 - i * 2.5};
    keys.push_back(k);
  }
  return keys;
}

/// Fills `dir` with a multi-segment WAL (2 devices, forced rotations) and
/// returns every key appended, in append order per device.
void BuildWal(const std::string& dir,
              std::vector<std::vector<KeyPoint>>* appended = nullptr) {
  KeyPointWalOptions options;
  options.dir = dir;
  options.segment_bytes = 256;  // rotate every append or two
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  for (int c = 0; c < 6; ++c) {
    const DeviceId device = 1 + static_cast<DeviceId>(c % 2);
    const std::vector<KeyPoint> keys =
        MakeKeys(static_cast<uint64_t>(c) * 10, 4, 100.0 * c,
                 device == 1 ? 0.0 : 5000.0, device == 1 ? 0.0 : -5000.0);
    ASSERT_TRUE(wal.Append(device, keys).ok());
    if (appended != nullptr) appended->push_back(keys);
  }
  ASSERT_TRUE(wal.Close().ok());
}

/// The ground truth the union must reproduce: a plain WAL recovery taken
/// before any compaction ran.
std::vector<wal::WalCheckpoint> AckedCheckpoints(const std::string& dir) {
  Result<WalRecovery> r = WalReader::Recover(dir);
  EXPECT_TRUE(r.ok());
  return std::move(r.value().checkpoints);
}

void ExpectExactRecovery(const std::string& wal_dir,
                         const std::string& block_dir,
                         const std::vector<wal::WalCheckpoint>& acked) {
  Result<StoreRecovery> r = RecoverStore(wal_dir, block_dir);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const std::vector<wal::WalCheckpoint>& got = r.value().wal.checkpoints;
  ASSERT_EQ(got.size(), acked.size());
  for (std::size_t i = 0; i < acked.size(); ++i) {
    EXPECT_TRUE(got[i] == acked[i]) << "checkpoint " << i;
  }
}

std::size_t CountFiles(const std::string& dir, const std::string& suffix) {
  std::size_t n = 0;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      ++n;
    }
  }
  return n;
}

TEST(CompactionTest, CompactsEverythingAndRecoveryIsExact) {
  const std::string wal_dir = FreshDir("compact_basic_wal");
  const std::string block_dir = FreshDir("compact_basic_blk");
  BuildWal(wal_dir);
  const std::vector<wal::WalCheckpoint> acked = AckedCheckpoints(wal_dir);
  ASSERT_GE(acked.size(), 6u);

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  Compactor compactor(options);
  ASSERT_TRUE(compactor.CompactOnce().ok());

  const CompactionStats stats = compactor.stats();
  EXPECT_EQ(stats.runs_completed, 1u);
  EXPECT_EQ(stats.checkpoints_compacted, acked.size());
  EXPECT_GT(stats.segments_consumed, 1u);  // the WAL really rotated
  EXPECT_EQ(stats.segments_deleted, stats.segments_consumed);
  EXPECT_EQ(stats.block_files_written, 1u);
  EXPECT_GE(stats.blocks_written, 2u);  // one run per device at least

  // The WAL directory is drained; the block directory is published.
  EXPECT_EQ(CountFiles(wal_dir, ".log"), 0u);
  EXPECT_EQ(CountFiles(block_dir, ".bqb"), 1u);
  EXPECT_EQ(CountFiles(block_dir, ".tmp"), 0u);
  Manifest manifest;
  ASSERT_TRUE(ReadManifest(block_dir, &manifest).ok());
  EXPECT_EQ(manifest.last_applied_seq, acked.back().seq);

  ExpectExactRecovery(wal_dir, block_dir, acked);
  Result<StoreRecovery> r = RecoverStore(wal_dir, block_dir);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().report.clean());
  EXPECT_EQ(r.value().report.checkpoints_from_wal, 0u);
  EXPECT_EQ(r.value().wal.next_seq, acked.back().seq + 1);
}

TEST(CompactionTest, RespectsSegmentBoundAndCompactsIncrementally) {
  const std::string wal_dir = FreshDir("compact_incr_wal");
  const std::string block_dir = FreshDir("compact_incr_blk");

  KeyPointWalOptions wal_options;
  wal_options.dir = wal_dir;
  wal_options.segment_bytes = 256;
  KeyPointWal wal(wal_options);
  ASSERT_TRUE(wal.Open().ok());
  for (int c = 0; c < 6; ++c) {
    ASSERT_TRUE(
        wal.Append(1, MakeKeys(static_cast<uint64_t>(c) * 100, 16,
                               100.0 * c, 0.0, 0.0))
            .ok());
  }

  // Ground truth so far: everything acked before any compaction ran.
  std::vector<wal::WalCheckpoint> acked = AckedCheckpoints(wal_dir);
  ASSERT_EQ(acked.size(), 6u);

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  Compactor compactor(options);
  // Compact only the sealed segments; the active one stays.
  const uint64_t active = wal.current_segment_index();
  ASSERT_GT(active, 1u);  // the WAL really rotated
  ASSERT_TRUE(compactor.CompactOnce(active).ok());
  EXPECT_EQ(compactor.stats().block_files_written, 1u);
  EXPECT_GE(CountFiles(wal_dir, ".log"), 1u);  // active segment survives
  EXPECT_TRUE(
      std::filesystem::exists(wal_dir + "/wal-00000" +
                              std::to_string(active) + ".log"));

  // More appends, close, compact the rest: a second block file appears and
  // the union is still the exact acked prefix.
  for (int c = 4; c < 7; ++c) {
    ASSERT_TRUE(
        wal.Append(2, MakeKeys(static_cast<uint64_t>(c) * 10, 3,
                               100.0 * c, 9000.0, 9000.0))
            .ok());
  }
  ASSERT_TRUE(wal.Close().ok());
  // The remaining WAL tail overlaps the first six; union by seq.
  for (const wal::WalCheckpoint& c : AckedCheckpoints(wal_dir)) {
    if (c.seq > acked.back().seq) acked.push_back(c);
  }
  ASSERT_EQ(acked.size(), 9u);

  ASSERT_TRUE(compactor.CompactOnce().ok());
  EXPECT_EQ(CountFiles(wal_dir, ".log"), 0u);
  EXPECT_EQ(CountFiles(block_dir, ".bqb"), 2u);
  ExpectExactRecovery(wal_dir, block_dir, acked);

  // A third run with nothing to do is a successful no-op.
  ASSERT_TRUE(compactor.CompactOnce().ok());
  EXPECT_EQ(compactor.stats().runs_completed, 3u);
  EXPECT_EQ(CountFiles(block_dir, ".bqb"), 2u);
}

TEST(CompactionTest, QuarantinesStaleTempAndOrphanBlocks) {
  const std::string wal_dir = FreshDir("compact_debris_wal");
  const std::string block_dir = FreshDir("compact_debris_blk");
  BuildWal(wal_dir);
  const std::vector<wal::WalCheckpoint> acked = AckedCheckpoints(wal_dir);

  std::filesystem::create_directories(block_dir);
  {
    std::ofstream tmp(block_dir + "/" + BlockTempFileName(5),
                      std::ios::binary);
    tmp << "half-written block file";
    std::ofstream mtmp(block_dir + "/MANIFEST.tmp", std::ios::binary);
    mtmp << "half-written manifest";
    std::ofstream orphan(block_dir + "/" + BlockFileName(5),
                         std::ios::binary);
    orphan << "published but never referenced";
  }

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  Compactor compactor(options);
  ASSERT_TRUE(compactor.CompactOnce().ok());
  const CompactionStats stats = compactor.stats();
  EXPECT_EQ(stats.orphan_tmp_removed, 2u);
  EXPECT_EQ(stats.orphan_blocks_removed, 1u);
  EXPECT_EQ(CountFiles(block_dir, ".tmp"), 0u);
  EXPECT_EQ(CountFiles(block_dir, ".bqb"), 1u);  // only the real one
  ExpectExactRecovery(wal_dir, block_dir, acked);
}

TEST(CompactionTest, PersistentEnospcDegradesAndResetRecovers) {
  const std::string wal_dir = FreshDir("compact_enospc_wal");
  const std::string block_dir = FreshDir("compact_enospc_blk");
  BuildWal(wal_dir);
  const std::vector<wal::WalCheckpoint> acked = AckedCheckpoints(wal_dir);

  FaultInjector injector(/*seed=*/7);
  injector.Arm(FaultSite::kEnospc, /*probability=*/1.0);  // persistent

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  options.fault_injector = &injector;
  Compactor compactor(options);

  const Status st = compactor.CompactOnce();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(IsEnospc(st)) << st.message();
  EXPECT_TRUE(compactor.degraded());
  {
    const CompactionStats stats = compactor.stats();
    EXPECT_EQ(stats.runs_failed, 1u);
    EXPECT_EQ(stats.enospc_events, 1u);
    EXPECT_EQ(stats.last_error_code, StatusCode::kIoError);
    // Exhausted the whole retry budget before degrading.
    EXPECT_EQ(stats.io_retries, options.backoff.max_attempts - 1);
  }
  // Degrade-and-continue: the WAL is untouched, recovery still exact, and
  // further runs are fast no-op errors that do not touch disk.
  EXPECT_GT(CountFiles(wal_dir, ".log"), 0u);
  ExpectExactRecovery(wal_dir, block_dir, acked);
  ASSERT_FALSE(compactor.CompactOnce().ok());
  EXPECT_EQ(compactor.stats().runs_started, 1u);  // degraded runs don't start

  // Space comes back: disarm, re-arm the compactor, and it drains fully.
  injector.Arm(FaultSite::kEnospc, /*probability=*/0.0);
  compactor.ResetDegraded();
  EXPECT_FALSE(compactor.degraded());
  ASSERT_TRUE(compactor.CompactOnce().ok());
  EXPECT_EQ(CountFiles(wal_dir, ".log"), 0u);
  ExpectExactRecovery(wal_dir, block_dir, acked);
}

TEST(CompactionTest, RenameFailuresRetryUnderBackoffAndSucceed) {
  const std::string wal_dir = FreshDir("compact_rename_wal");
  const std::string block_dir = FreshDir("compact_rename_blk");
  BuildWal(wal_dir);
  const std::vector<wal::WalCheckpoint> acked = AckedCheckpoints(wal_dir);

  FaultInjector injector(/*seed=*/7);
  injector.Arm(FaultSite::kRenameFail, /*probability=*/1.0, /*max_fires=*/2);

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  options.fault_injector = &injector;
  Compactor compactor(options);

  ASSERT_TRUE(compactor.CompactOnce().ok());
  const CompactionStats stats = compactor.stats();
  EXPECT_EQ(stats.runs_completed, 1u);
  EXPECT_EQ(stats.io_retries, 2u);  // two injected failures, then success
  EXPECT_EQ(stats.runs_failed, 0u);
  EXPECT_EQ(CountFiles(block_dir, ".tmp"), 0u);  // retries left no debris
  ExpectExactRecovery(wal_dir, block_dir, acked);
}

TEST(CompactionTest, CorruptManifestFallbackRecoversExactly) {
  const std::string wal_dir = FreshDir("compact_fallback_wal");
  const std::string block_dir = FreshDir("compact_fallback_blk");
  BuildWal(wal_dir);
  const std::vector<wal::WalCheckpoint> acked = AckedCheckpoints(wal_dir);

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  Compactor compactor(options);
  ASSERT_TRUE(compactor.CompactOnce().ok());

  // Trash the manifest: recovery falls back to scanning published block
  // files and still reproduces the exact acked prefix.
  {
    std::ofstream out(block_dir + "/MANIFEST",
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  Result<StoreRecovery> r = RecoverStore(wal_dir, block_dir);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().report.manifest_corrupt);
  EXPECT_FALSE(r.value().report.clean());
  ASSERT_EQ(r.value().wal.checkpoints.size(), acked.size());
  for (std::size_t i = 0; i < acked.size(); ++i) {
    EXPECT_TRUE(r.value().wal.checkpoints[i] == acked[i]);
  }

  // A compactor refuses to run over a corrupt manifest (it cannot trust
  // the watermark), and does NOT degrade — this is not disk-full.
  Compactor again(options);
  ASSERT_FALSE(again.CompactOnce().ok());
  EXPECT_FALSE(again.degraded());
}

TEST(WalSegmentListingTest, QuarantinesDuplicatesAndTempsDeterministically) {
  const std::string dir = FreshDir("wal_dirty_dir");
  std::filesystem::create_directories(dir);
  const auto touch = [&](const std::string& name, const std::string& body) {
    std::ofstream out(dir + "/" + name, std::ios::binary);
    out << body;
  };
  touch("wal-000001.log", "a");
  touch("wal-1.log", "duplicate of 1");  // same index, different spelling
  touch("wal-000002.log", "b");
  touch("wal-000002.log.tmp", "stale temp");
  touch("notes.txt", "foreign");

  for (int round = 0; round < 3; ++round) {  // deterministic across calls
    std::vector<std::string> ignored;
    Result<std::vector<WalSegmentFile>> listed = ListWalSegments(dir, &ignored);
    ASSERT_TRUE(listed.ok());
    ASSERT_EQ(listed.value().size(), 2u);
    EXPECT_EQ(listed.value()[0].index, 1u);
    // Lexicographically smallest path wins the duplicate index.
    EXPECT_EQ(listed.value()[0].path, dir + "/wal-000001.log");
    EXPECT_EQ(listed.value()[1].index, 2u);
    std::sort(ignored.begin(), ignored.end());
    ASSERT_EQ(ignored.size(), 2u);
    EXPECT_EQ(ignored[0], dir + "/wal-000002.log.tmp");
    EXPECT_EQ(ignored[1], dir + "/wal-1.log");
  }
  // The no-out-param overload still dedupes (foreign/tmp just unreported).
  Result<std::vector<WalSegmentFile>> listed = ListWalSegments(dir);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed.value().size(), 2u);
}

TEST(WalHealthTest, StatsReportCauseOfDeath) {
  const std::string dir = FreshDir("wal_health");
  FaultInjector injector(/*seed=*/3);
  injector.Arm(FaultSite::kFsyncFail, /*probability=*/1.0, /*max_fires=*/1);
  KeyPointWalOptions options;
  options.dir = dir;
  options.durability = WalDurability::kFsyncEveryBatch;
  options.fault_injector = &injector;
  KeyPointWal wal(options);
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_TRUE(wal.stats().healthy());

  ASSERT_FALSE(wal.Append(1, MakeKeys(0, 3, 0.0, 0.0, 0.0)).ok());
  EXPECT_TRUE(wal.dead());
  const KeyPointWalStats stats = wal.stats();
  EXPECT_FALSE(stats.healthy());
  EXPECT_EQ(stats.last_error_code, StatusCode::kIoError);
  EXPECT_NE(stats.last_error.find("fsync"), std::string::npos);
}

// --- range queries off compressed blocks ----------------------------------

TEST(BlockStoreTest, RangeQueryPrunesAndHonorsQuantumBound) {
  const std::string wal_dir = FreshDir("blockstore_wal");
  const std::string block_dir = FreshDir("blockstore_blk");

  // Two far-apart clusters so pruning is observable; small blocks so each
  // cluster spans several.
  KeyPointWalOptions wal_options;
  wal_options.dir = wal_dir;
  KeyPointWal wal(wal_options);
  ASSERT_TRUE(wal.Open().ok());
  std::vector<KeyPoint> originals;
  for (int c = 0; c < 8; ++c) {
    const DeviceId device = 1 + static_cast<DeviceId>(c % 2);
    const double x0 = device == 1 ? 0.0 : 100000.0;
    const double y0 = device == 1 ? 0.0 : 100000.0;
    const std::vector<KeyPoint> keys =
        MakeKeys(static_cast<uint64_t>(c) * 10, 5, 50.0 * c, x0, y0);
    originals.insert(originals.end(), keys.begin(), keys.end());
    ASSERT_TRUE(wal.Append(device, keys).ok());
  }
  ASSERT_TRUE(wal.Close().ok());

  CompactionOptions options;
  options.wal_dir = wal_dir;
  options.block_dir = block_dir;
  options.max_points_per_block = 5;  // one block per checkpoint here
  Compactor compactor(options);
  ASSERT_TRUE(compactor.CompactOnce().ok());
  ASSERT_GE(compactor.stats().blocks_written, 8u);

  Result<BlockStore> opened = BlockStore::Open(block_dir);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  const BlockStore& store = opened.value();
  EXPECT_EQ(store.block_count(), compactor.stats().blocks_written);

  const wal::WalQuantization quant = store.manifest().quant;
  const Vec2 center{10.0, -10.0};
  const double radius = 60.0;
  const double t_min = 0.0, t_max = 200.0;

  std::vector<KeyPoint> got;
  RangeQueryStats qstats;
  ASSERT_TRUE(store.Query(center, radius, t_min, t_max, &got, &qstats).ok());

  // Brute-force expectation over the quantized originals (what storage
  // holds): each within quantum/2 per axis of the raw input.
  std::size_t expected = 0;
  for (const KeyPoint& k : originals) {
    const KeyPoint q = wal::Dequantize(wal::Quantize(k, quant), quant);
    EXPECT_LE(std::abs(q.point.t - k.point.t), quant.time_quantum / 2 + 1e-12);
    EXPECT_LE(std::abs(q.point.pos.x - k.point.pos.x),
              quant.coord_quantum / 2 + 1e-12);
    EXPECT_LE(std::abs(q.point.pos.y - k.point.pos.y),
              quant.coord_quantum / 2 + 1e-12);
    if (q.point.t >= t_min && q.point.t <= t_max &&
        Distance(q.point.pos, center) <= radius) {
      ++expected;
    }
  }
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(got.size(), expected);
  EXPECT_EQ(qstats.points_returned, expected);
  for (const KeyPoint& k : got) {
    EXPECT_LE(Distance(k.point.pos, center), radius);
    EXPECT_GE(k.point.t, t_min);
    EXPECT_LE(k.point.t, t_max);
  }

  // Pruning really pruned: the far cluster's blocks were never decoded.
  EXPECT_EQ(qstats.blocks_total, store.block_count());
  EXPECT_LT(qstats.blocks_decoded, qstats.blocks_total);
  EXPECT_LE(qstats.blocks_decoded, qstats.grid_candidates);

  // A query over empty space decodes nothing at all.
  std::vector<KeyPoint> none;
  RangeQueryStats far_stats;
  ASSERT_TRUE(store
                  .Query(Vec2{-50000.0, 50000.0}, 100.0, t_min, t_max, &none,
                         &far_stats)
                  .ok());
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(far_stats.blocks_decoded, 0u);

  // A time window that misses everything prunes by time span alone.
  RangeQueryStats late_stats;
  ASSERT_TRUE(
      store.Query(center, radius, 1e6, 2e6, &none, &late_stats).ok());
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(late_stats.blocks_decoded, 0u);
}

TEST(BlockStoreTest, OpenReportsNotFoundWithoutManifest) {
  const std::string dir = FreshDir("blockstore_empty");
  std::filesystem::create_directories(dir);
  Result<BlockStore> opened = BlockStore::Open(dir);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bqs
