// Temporal reconstruction: uniform and Gaussian-fitted interpolation.
#include "trajectory/reconstruct.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

CompressedTrajectory TwoKeySegment() {
  CompressedTrajectory c;
  c.keys.push_back(KeyPoint{TrackPoint{{0, 0}, 0.0, {}}, 0});
  c.keys.push_back(KeyPoint{TrackPoint{{100, 0}, 100.0, {}}, 100});
  return c;
}

TEST(ReconstructTest, UniformFractionIsLinear) {
  SegmentTimeModel model;  // uniform
  EXPECT_DOUBLE_EQ(model.Fraction(0, 100, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.Fraction(0, 100, 50), 0.5);
  EXPECT_DOUBLE_EQ(model.Fraction(0, 100, 100), 1.0);
  EXPECT_DOUBLE_EQ(model.Fraction(0, 100, 150), 1.0);  // clamps
  EXPECT_DOUBLE_EQ(model.Fraction(0, 100, -10), 0.0);
  EXPECT_DOUBLE_EQ(model.Fraction(5, 5, 5), 0.0);  // degenerate segment
}

TEST(ReconstructTest, GaussianFractionIsMonotoneAndAnchored) {
  SegmentTimeModel model;
  model.kind = SegmentTimeModel::Kind::kGaussian;
  model.mu = 50.0;
  model.sigma = 20.0;
  EXPECT_DOUBLE_EQ(model.Fraction(0, 100, 0), 0.0);
  EXPECT_NEAR(model.Fraction(0, 100, 100), 1.0, 1e-12);
  double prev = -1.0;
  for (double t = 0.0; t <= 100.0; t += 5.0) {
    const double f = model.Fraction(0, 100, t);
    EXPECT_GE(f, prev);
    prev = f;
  }
  // Symmetric Gaussian centered mid-segment crosses 1/2 at the middle.
  EXPECT_NEAR(model.Fraction(0, 100, 50), 0.5, 1e-9);
}

TEST(ReconstructTest, OnlineFitterFallsBackToUniform) {
  OnlineGaussianFitter fitter;
  EXPECT_EQ(fitter.Model().kind, SegmentTimeModel::Kind::kUniform);
  fitter.Add(1.0);
  EXPECT_EQ(fitter.Model().kind, SegmentTimeModel::Kind::kUniform);
  fitter.Add(2.0);
  fitter.Add(3.0);
  const SegmentTimeModel model = fitter.Model();
  EXPECT_EQ(model.kind, SegmentTimeModel::Kind::kGaussian);
  EXPECT_NEAR(model.mu, 2.0, 1e-12);
}

TEST(ReconstructTest, ReconstructAtEndpointsAndMidpoint) {
  const CompressedTrajectory c = TwoKeySegment();
  const auto start = ReconstructAt(c, 0.0);
  ASSERT_TRUE(start.has_value());
  EXPECT_NEAR(start->pos.x, 0.0, 1e-12);
  const auto mid = ReconstructAt(c, 50.0);
  ASSERT_TRUE(mid.has_value());
  EXPECT_NEAR(mid->pos.x, 50.0, 1e-12);
  const auto end = ReconstructAt(c, 100.0);
  ASSERT_TRUE(end.has_value());
  EXPECT_NEAR(end->pos.x, 100.0, 1e-12);
}

TEST(ReconstructTest, OutsideRangeIsNullopt) {
  const CompressedTrajectory c = TwoKeySegment();
  EXPECT_FALSE(ReconstructAt(c, -1.0).has_value());
  EXPECT_FALSE(ReconstructAt(c, 101.0).has_value());
  CompressedTrajectory tiny;
  tiny.keys.push_back(c.keys[0]);
  EXPECT_FALSE(ReconstructAt(tiny, 0.0).has_value());
}

TEST(ReconstructTest, MultiSegmentPicksRightSegment) {
  CompressedTrajectory c;
  c.keys.push_back(KeyPoint{TrackPoint{{0, 0}, 0.0, {}}, 0});
  c.keys.push_back(KeyPoint{TrackPoint{{10, 0}, 10.0, {}}, 10});
  c.keys.push_back(KeyPoint{TrackPoint{{10, 20}, 30.0, {}}, 30});
  const auto p1 = ReconstructAt(c, 5.0);
  ASSERT_TRUE(p1.has_value());
  EXPECT_NEAR(p1->pos.x, 5.0, 1e-12);
  EXPECT_NEAR(p1->pos.y, 0.0, 1e-12);
  const auto p2 = ReconstructAt(c, 20.0);
  ASSERT_TRUE(p2.has_value());
  EXPECT_NEAR(p2->pos.x, 10.0, 1e-12);
  EXPECT_NEAR(p2->pos.y, 10.0, 1e-12);
}

TEST(ReconstructTest, GaussianModelImprovesNonUniformMotion) {
  // The object dwells near the segment start and sprints at the end; its
  // timestamps cluster early. A Gaussian P fitted to the timestamps places
  // mid-time reconstruction nearer the dwell than uniform interpolation.
  Trajectory original;
  for (int i = 0; i <= 80; ++i) {  // 81 samples crawling over 10 m
    original.push_back(
        TrackPoint{{i * 0.125, 0.0}, static_cast<double>(i), {}});
  }
  for (int i = 1; i <= 20; ++i) {  // 20 samples sprinting over 90 m
    original.push_back(
        TrackPoint{{10.0 + i * 4.5, 0.0}, 80.0 + i, {}});
  }
  CompressedTrajectory c;
  c.keys.push_back(KeyPoint{original.front(), 0});
  c.keys.push_back(KeyPoint{original.back(), original.size() - 1});

  const auto models = FitGaussianTimeModels(original, c);
  ASSERT_EQ(models.size(), 1u);

  double err_uniform = 0.0;
  double err_gauss = 0.0;
  for (const TrackPoint& truth : original) {
    const auto u = ReconstructAt(c, truth.t);
    const auto g = ReconstructAt(c, truth.t, models);
    ASSERT_TRUE(u.has_value());
    ASSERT_TRUE(g.has_value());
    err_uniform += Distance(u->pos, truth.pos);
    err_gauss += Distance(g->pos, truth.pos);
  }
  EXPECT_LT(err_gauss, err_uniform);
}

TEST(ReconstructTest, SeriesCoversSampledTimes) {
  const CompressedTrajectory c = TwoKeySegment();
  const std::vector<double> times{0.0, 25.0, 50.0, 75.0, 100.0, 200.0};
  const auto series = ReconstructSeries(c, times);
  EXPECT_EQ(series.size(), 5u);  // 200 is outside
  EXPECT_NEAR(series[1].pos.x, 25.0, 1e-12);
}

}  // namespace
}  // namespace bqs
