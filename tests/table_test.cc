// Table printing and CSV export used by the bench harness.
#include "eval/table.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  TablePrinter table({"algo", "rate"});
  table.AddRow({"BQS", "4.8%"});
  table.AddRow({"FBQS", "5.0%"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("algo"), std::string::npos);
  EXPECT_NE(out.find("FBQS"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TableTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(table.rows(), 1u);
}

TEST(TableTest, WritesCsv) {
  TablePrinter table({"x", "y"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  const std::string path = std::string(::testing::TempDir()) + "/t.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

TEST(TableTest, CsvToBadPathFails) {
  TablePrinter table({"x"});
  EXPECT_FALSE(table.WriteCsv("/nonexistent/dir/t.csv").ok());
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtDouble(2.0, 0), "2");
  EXPECT_EQ(FmtPercent(0.048, 1), "4.8%");
  EXPECT_EQ(FmtInt(-42), "-42");
}

}  // namespace
}  // namespace bqs
