// FleetEngine ingest-pipeline stress: randomized chunk sizes, tiny blocks
// and rings (forcing wrap, recycling and backpressure), and mid-stream
// FinishDevice commands racing the feed — all while the per-device output
// must stay byte-identical to the sequential CompressAll reference. This
// suite runs under the TSan CI job; a clean pass there is the actual
// race-freedom assertion for the SPSC ring + arena handoff.
#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "service/fleet_engine.h"
#include "simulation/datasets.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

class CollectingSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[device].push_back(key);
  }
  void OnSessionEnd(DeviceId device, SessionEndReason reason) override {
    std::lock_guard<std::mutex> lock(mu_);
    ends_[device].push_back(reason);
  }
  std::map<DeviceId, std::vector<KeyPoint>> keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }
  std::map<DeviceId, std::vector<SessionEndReason>> ends() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ends_;
  }

 private:
  mutable std::mutex mu_;
  std::map<DeviceId, std::vector<KeyPoint>> keys_;
  std::map<DeviceId, std::vector<SessionEndReason>> ends_;
};

std::map<DeviceId, std::vector<KeyPoint>> SequentialReference(
    const FleetDataset& fleet, const AlgorithmConfig& config) {
  std::map<DeviceId, std::vector<KeyPoint>> out;
  for (const auto& [device, stream] : fleet.devices) {
    auto compressor = MakeStreamCompressor(config);
    out[device] = CompressAll(*compressor, stream).keys;
  }
  return out;
}

TEST(FleetStressTest, RandomChunksTinyBlocksAndMidFeedFinishes) {
  // Tiny blocks + a 2-deep ring force block wrap, arena recycling and real
  // producer backpressure; random chunk sizes exercise partial-block
  // sealing from every phase. FinishDevice fires the moment a device's
  // feed is exhausted — i.e. mid-feed from the engine's point of view,
  // racing blocks still queued for other devices — which must not disturb
  // any output (the finish lands after that device's last record by ring
  // order, so per-device output still matches the sequential reference).
  const FleetDataset fleet = BuildFleetDataset(10, 0.05, 9101);

  // Last feed index per device, to trigger FinishDevice mid-feed.
  std::map<DeviceId, std::size_t> last_index;
  for (std::size_t i = 0; i < fleet.feed.size(); ++i) {
    last_index[fleet.feed[i].device] = i;
  }

  for (const AlgorithmId id : {AlgorithmId::kBqs, AlgorithmId::kFbqs}) {
    AlgorithmConfig config;
    config.id = id;
    config.epsilon = 8.0;
    const auto reference = SequentialReference(fleet, config);

    for (const std::size_t shards : {std::size_t{2}, std::size_t{5}}) {
      for (const uint64_t seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
        Rng rng(seed * 7919);
        CollectingSink sink;
        FleetEngineOptions options;
        options.algorithm = config;
        options.num_shards = shards;
        options.block_capacity = 16;    // clamp floor: maximal wrap churn
        options.max_pending_blocks = 2; // force backpressure
        FleetEngine engine(options, sink);

        std::size_t i = 0;
        while (i < fleet.feed.size()) {
          const std::size_t chunk = static_cast<std::size_t>(
              rng.UniformInt(1, 257));
          const std::size_t n = std::min(chunk, fleet.feed.size() - i);
          engine.IngestBatch(
              std::span<const FleetRecord>(fleet.feed.data() + i, n));
          for (std::size_t k = i; k < i + n; ++k) {
            const auto it = last_index.find(fleet.feed[k].device);
            if (it != last_index.end() && it->second == k) {
              engine.FinishDevice(fleet.feed[k].device);
            }
          }
          i += n;
        }
        engine.FinishAll();

        EXPECT_EQ(sink.keys(), reference)
            << AlgorithmName(id) << " shards=" << shards
            << " seed=" << seed;

        const FleetStats stats = engine.Stats();
        EXPECT_EQ(stats.records_ingested, fleet.feed.size());
        EXPECT_EQ(stats.sessions_finished, fleet.devices.size());
        EXPECT_EQ(stats.live_sessions, 0u);
        // 16-record blocks over this feed vastly outnumber the arena's
        // few resident blocks: recycling must carry almost all of them.
        EXPECT_GT(stats.blocks_dispatched,
                  stats.blocks_allocated * 4);
        EXPECT_EQ(stats.blocks_recycled + stats.blocks_allocated,
                  stats.blocks_dispatched);
        EXPECT_LE(stats.peak_queue_depth, options.max_pending_blocks);
        EXPECT_GT(stats.coalesced_runs, 0u);
        EXPECT_GE(stats.records_ingested, stats.coalesced_runs);

        // Exactly one finish per device, every one explicit.
        for (const auto& [device, reasons] : sink.ends()) {
          (void)device;
          ASSERT_EQ(reasons.size(), 1u);
          EXPECT_EQ(reasons[0], SessionEndReason::kFinished);
        }
      }
    }
  }
}

TEST(FleetStressTest, ShallowRingBackpressurePipelineStaysIdentical) {
  // Two shards with a tiny ring is the tightest producer/worker coupling
  // (one shard would take the inline shortcut): the producer repeatedly
  // outruns the 2-block rings and must block, and every resume has to
  // continue exactly where routing stopped.
  const FleetDataset fleet = BuildFleetDataset(6, 0.05, 9102);
  AlgorithmConfig config;
  config.id = AlgorithmId::kBqs;
  config.epsilon = 8.0;
  const auto reference = SequentialReference(fleet, config);

  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = config;
  options.num_shards = 2;
  options.block_capacity = 16;
  options.max_pending_blocks = 2;
  {
    FleetEngine engine(options, sink);
    ASSERT_FALSE(engine.inline_mode());
    engine.IngestBatch(fleet.feed);  // one giant batch: sustained pressure
    engine.FinishAll();
    const FleetStats stats = engine.Stats();
    EXPECT_EQ(stats.records_ingested, fleet.feed.size());
    EXPECT_GT(stats.blocks_recycled, 0u);
  }
  EXPECT_EQ(sink.keys(), reference);
}

TEST(FleetStressTest, DestructorMidStreamDrainsWithoutFinalizing) {
  // Tear the engine down while blocks are still queued on tiny rings: the
  // workers must drain and exit without emitting session ends, and
  // without leaking or double-freeing any pooled block (ASan/TSan-backed).
  const FleetDataset fleet = BuildFleetDataset(8, 0.05, 9103);
  AlgorithmConfig config;
  config.id = AlgorithmId::kFbqs;
  config.epsilon = 8.0;
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = config;
  options.num_shards = 3;
  options.block_capacity = 16;
  options.max_pending_blocks = 2;
  {
    FleetEngine engine(options, sink);
    engine.IngestBatch(std::span<const FleetRecord>(
        fleet.feed.data(), fleet.feed.size() / 2));
    // No Flush, no Finish: destructor seals + drains.
  }
  for (const auto& [device, reasons] : sink.ends()) {
    (void)device;
    EXPECT_TRUE(reasons.empty());
  }
}

}  // namespace
}  // namespace bqs
