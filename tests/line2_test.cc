// 2-D distance primitives — the ground-truth metric of the whole library.
#include "geometry/line2.h"

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"

namespace bqs {
namespace {

TEST(Line2Test, PointToLineBasics) {
  // Horizontal line through (0,0)-(10,0): distance is |y|.
  EXPECT_DOUBLE_EQ(PointToLineDistance({5.0, 3.0}, {0, 0}, {10, 0}), 3.0);
  EXPECT_DOUBLE_EQ(PointToLineDistance({-5.0, -2.0}, {0, 0}, {10, 0}), 2.0);
  // Points on the line.
  EXPECT_DOUBLE_EQ(PointToLineDistance({42.0, 0.0}, {0, 0}, {10, 0}), 0.0);
}

TEST(Line2Test, PointToLineDegenerateLineIsPointDistance) {
  EXPECT_DOUBLE_EQ(PointToLineDistance({3.0, 4.0}, {0, 0}, {0, 0}), 5.0);
}

TEST(Line2Test, PointToSegmentClampsToEndpoints) {
  // Beyond the far end: distance to the endpoint.
  EXPECT_DOUBLE_EQ(PointToSegmentDistance({13.0, 4.0}, {0, 0}, {10, 0}), 5.0);
  // Before the start.
  EXPECT_DOUBLE_EQ(PointToSegmentDistance({-3.0, 4.0}, {0, 0}, {10, 0}), 5.0);
  // Between: perpendicular.
  EXPECT_DOUBLE_EQ(PointToSegmentDistance({5.0, 4.0}, {0, 0}, {10, 0}), 4.0);
}

TEST(Line2Test, SegmentDistanceDominatesLineDistance) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const Vec2 p{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const Vec2 a{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const Vec2 b{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    EXPECT_GE(PointToSegmentDistance(p, a, b) + 1e-12,
              PointToLineDistance(p, a, b));
  }
}

TEST(Line2Test, ProjectParamIsAffine) {
  EXPECT_DOUBLE_EQ(ProjectParam({0, 5}, {0, 0}, {10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ProjectParam({10, -3}, {0, 0}, {10, 0}), 1.0);
  EXPECT_DOUBLE_EQ(ProjectParam({25, 7}, {0, 0}, {10, 0}), 2.5);
  EXPECT_DOUBLE_EQ(ProjectParam({1, 1}, {2, 2}, {2, 2}), 0.0);
}

TEST(Line2Test, ClosestPointOnSegment) {
  const Vec2 c = ClosestPointOnSegment({5.0, 4.0}, {0, 0}, {10, 0});
  EXPECT_NEAR(c.x, 5.0, 1e-12);
  EXPECT_NEAR(c.y, 0.0, 1e-12);
  const Vec2 e = ClosestPointOnSegment({99.0, 1.0}, {0, 0}, {10, 0});
  EXPECT_EQ(e, (Vec2{10.0, 0.0}));
}

TEST(Line2Test, SignedOffsetSideConvention) {
  // Left of the direction of travel is positive.
  EXPECT_GT(SignedLineOffset({5.0, 1.0}, {0, 0}, {10, 0}), 0.0);
  EXPECT_LT(SignedLineOffset({5.0, -1.0}, {0, 0}, {10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(SignedLineOffset({5.0, 0.0}, {0, 0}, {10, 0}), 0.0);
}

TEST(Line2Test, PointDeviationDispatch) {
  const Vec2 p{13.0, 4.0};
  EXPECT_DOUBLE_EQ(
      PointDeviation(p, {0, 0}, {10, 0}, DistanceMetric::kPointToLine), 4.0);
  EXPECT_DOUBLE_EQ(
      PointDeviation(p, {0, 0}, {10, 0}, DistanceMetric::kPointToSegment),
      5.0);
}

TEST(Line2Test, SegmentsIntersectCases) {
  // Crossing.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {10, 10}, {0, 10}, {10, 0}));
  // Touching at an endpoint.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {5, 5}, {5, 5}, {9, 1}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {10, 0}, {5, 0}, {15, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {4, 0}, {5, 0}, {9, 0}));
  // Parallel.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {10, 0}, {0, 1}, {10, 1}));
}

TEST(Line2Test, SegmentToSegmentDistance) {
  EXPECT_DOUBLE_EQ(
      SegmentToSegmentDistance({0, 0}, {10, 0}, {0, 1}, {10, 1}), 1.0);
  EXPECT_DOUBLE_EQ(
      SegmentToSegmentDistance({0, 0}, {10, 10}, {0, 10}, {10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(
      SegmentToSegmentDistance({0, 0}, {1, 0}, {4, 0}, {9, 0}), 3.0);
}

TEST(Line2Test, SegmentToSegmentMatchesSampledMinimum) {
  Rng rng(7);
  for (int iter = 0; iter < 300; ++iter) {
    const Vec2 a{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const Vec2 b{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const Vec2 c{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const Vec2 d{rng.Uniform(-50, 50), rng.Uniform(-50, 50)};
    const double computed = SegmentToSegmentDistance(a, b, c, d);
    double sampled = 1e100;
    for (int i = 0; i <= 50; ++i) {
      const Vec2 p = a + (i / 50.0) * (b - a);
      sampled = std::min(sampled, PointToSegmentDistance(p, c, d));
    }
    EXPECT_LE(computed, sampled + 1e-9);
    // Sampling is an upper bound on the true minimum but within grid error.
    EXPECT_GE(computed, sampled - 3.0);
  }
}

}  // namespace
}  // namespace bqs
