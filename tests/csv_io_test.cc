// CSV persistence round trips and error handling.
#include "trajectory/csv_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace bqs {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvIoTest, GeoTraceRoundTrip) {
  GeoTrace trace;
  trace.push_back(GeoSample{{-27.4698, 153.0251}, 0.0});
  trace.push_back(GeoSample{{-27.4700, 153.0300}, 60.0});
  const std::string path = TempPath("geo.csv");
  ASSERT_TRUE(WriteGeoTraceCsv(trace, path).ok());
  const auto read = ReadGeoTraceCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_NEAR(read.value()[0].pos.lat_deg, -27.4698, 1e-7);
  EXPECT_NEAR(read.value()[1].pos.lon_deg, 153.0300, 1e-7);
  EXPECT_NEAR(read.value()[1].t, 60.0, 1e-6);
}

TEST(CsvIoTest, TrajectoryRoundTripWithVelocity) {
  Trajectory t;
  t.push_back(TrackPoint{{1.5, -2.25}, 10.0, {3.0, 4.0}});
  t.push_back(TrackPoint{{100.0, 50.0}, 70.0, {-1.0, 0.5}});
  const std::string path = TempPath("traj.csv");
  ASSERT_TRUE(WriteTrajectoryCsv(t, path).ok());
  const auto read = ReadTrajectoryCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_NEAR(read.value()[0].pos.x, 1.5, 1e-3);
  EXPECT_NEAR(read.value()[0].velocity.x, 3.0, 1e-3);
  EXPECT_NEAR(read.value()[1].velocity.y, 0.5, 1e-3);
}

TEST(CsvIoTest, ReadWithoutVelocityFillsFiniteDifferences) {
  const std::string path = TempPath("novel.csv");
  {
    std::ofstream out(path);
    out << "x,y,t\n0,0,0\n10,0,1\n20,0,2\n";
  }
  const auto read = ReadTrajectoryCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 3u);
  EXPECT_NEAR(read.value()[1].velocity.x, 10.0, 1e-9);
}

TEST(CsvIoTest, HeaderOptional) {
  const std::string path = TempPath("nohdr.csv");
  {
    std::ofstream out(path);
    out << "-27.5,153.0,0\n-27.6,153.1,60\n";
  }
  const auto read = ReadGeoTraceCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 2u);
}

TEST(CsvIoTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  {
    std::ofstream out(path);
    out << "lat,lon,t\n\n-27.5,153.0,0\n\n";
  }
  const auto read = ReadGeoTraceCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().size(), 1u);
}

TEST(CsvIoTest, CorruptRowsFail) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "lat,lon,t\n-27.5,abc,0\n";
  }
  EXPECT_FALSE(ReadGeoTraceCsv(path).ok());
  {
    std::ofstream out(path);
    out << "lat,lon,t\n-27.5\n";
  }
  EXPECT_FALSE(ReadGeoTraceCsv(path).ok());
}

TEST(CsvIoTest, MalformedRowsFailWithLocatedStatus) {
  // Non-numeric coordinate: the status must carry file, line and column —
  // a malformed feed has to be diagnosable from the message alone.
  const std::string path = TempPath("malformed.csv");
  {
    std::ofstream out(path);
    out << "x,y,t\n1,2,3\n4,notanumber,6\n";
  }
  const auto bad_coord = ReadTrajectoryCsv(path);
  ASSERT_FALSE(bad_coord.ok());
  EXPECT_NE(bad_coord.status().message().find(":3:"), std::string::npos)
      << bad_coord.status().message();
  EXPECT_NE(bad_coord.status().message().find("y"), std::string::npos);

  // Truncated row (two of three fields).
  {
    std::ofstream out(path);
    out << "x,y,t\n1,2\n";
  }
  EXPECT_FALSE(ReadTrajectoryCsv(path).ok());

  // Truncated velocity pair: vx present, vy absent -> 4 fields counts as
  // the 3-field shape (extra field ignored is NOT acceptable silently;
  // the reader requires >= 5 for velocities and must not invent one).
  {
    std::ofstream out(path);
    out << "x,y,t,vx,vy\n1,2,3,4,\n";
  }
  const auto bad_vel = ReadTrajectoryCsv(path);
  ASSERT_FALSE(bad_vel.ok());
  EXPECT_NE(bad_vel.status().message().find("vy"), std::string::npos)
      << bad_vel.status().message();

  // Empty field in the middle.
  {
    std::ofstream out(path);
    out << "lat,lon,t\n-27.5,,0\n";
  }
  EXPECT_FALSE(ReadGeoTraceCsv(path).ok());
}

TEST(CsvIoTest, NonFiniteValuesRejected) {
  // strtod accepts "inf"/"nan"; the reader must not let them through —
  // a non-finite coordinate poisons every geometric predicate downstream.
  const std::string path = TempPath("nonfinite.csv");
  {
    std::ofstream out(path);
    out << "x,y,t\n1,inf,3\n";
  }
  const auto inf_read = ReadTrajectoryCsv(path);
  ASSERT_FALSE(inf_read.ok());
  EXPECT_NE(inf_read.status().message().find("non-finite"),
            std::string::npos)
      << inf_read.status().message();
  {
    std::ofstream out(path);
    out << "lat,lon,t\nnan,153.0,0\n";
  }
  EXPECT_FALSE(ReadGeoTraceCsv(path).ok());
}

TEST(CsvIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadGeoTraceCsv("/nonexistent/nope.csv").ok());
  EXPECT_FALSE(ReadTrajectoryCsv("/nonexistent/nope.csv").ok());
  EXPECT_FALSE(WriteGeoTraceCsv({}, "/nonexistent/dir/out.csv").ok());
}

TEST(CsvIoTest, CompressedCsvWrites) {
  CompressedTrajectory c;
  c.keys.push_back(KeyPoint{TrackPoint{{1, 2}, 3.0, {}}, 7});
  const std::string path = TempPath("comp.csv");
  ASSERT_TRUE(WriteCompressedCsv(c, path).ok());
  std::ifstream in(path);
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "index,x,y,t");
  EXPECT_EQ(row.substr(0, 2), "7,");
}

TEST(CsvIoTest, CompressedCsvRoundTrips) {
  // Writer -> reader round trip at the writer's printed precision (x/y at
  // 1e-4, t at 1e-3). Velocities are not stored and come back zero.
  CompressedTrajectory c;
  c.keys.push_back(KeyPoint{TrackPoint{{1.5, -2.25}, 3.125, {9, 9}}, 0});
  c.keys.push_back(KeyPoint{TrackPoint{{-100.0625, 50.5}, 60.75, {}}, 13});
  c.keys.push_back(
      KeyPoint{TrackPoint{{4096.875, -0.125}, 3600.0, {}}, 4000000000u});
  const std::string path = TempPath("comp_rt.csv");
  ASSERT_TRUE(WriteCompressedCsv(c, path).ok());
  const auto read = ReadCompressedCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().keys.size(), c.keys.size());
  for (std::size_t i = 0; i < c.keys.size(); ++i) {
    EXPECT_EQ(read.value().keys[i].index, c.keys[i].index) << i;
    EXPECT_NEAR(read.value().keys[i].point.pos.x, c.keys[i].point.pos.x,
                5e-5) << i;
    EXPECT_NEAR(read.value().keys[i].point.pos.y, c.keys[i].point.pos.y,
                5e-5) << i;
    EXPECT_NEAR(read.value().keys[i].point.t, c.keys[i].point.t, 5e-4) << i;
    EXPECT_EQ(read.value().keys[i].point.velocity.x, 0.0) << i;
  }
}

TEST(CsvIoTest, CompressedCsvReaderToleratesForeignFormatting) {
  // No header and no trailing newline — a file trimmed by another tool
  // must still round trip.
  const std::string path = TempPath("comp_foreign.csv");
  {
    std::ofstream out(path);
    out << "0,1.5,2.5,3.5\n12,-4.0,5.0,6.0";  // note: no final '\n'
  }
  const auto read = ReadCompressedCsv(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read.value().keys.size(), 2u);
  EXPECT_EQ(read.value().keys[1].index, 12u);
  EXPECT_NEAR(read.value().keys[1].point.pos.x, -4.0, 1e-9);
  EXPECT_NEAR(read.value().keys[1].point.t, 6.0, 1e-9);
}

TEST(CsvIoTest, CompressedCsvReaderRejectsMalformedRows) {
  const std::string path = TempPath("comp_bad.csv");
  // Non-numeric index, with a located error message.
  {
    std::ofstream out(path);
    out << "index,x,y,t\nseven,1,2,3\n";
  }
  const auto bad_index = ReadCompressedCsv(path);
  ASSERT_FALSE(bad_index.ok());
  EXPECT_EQ(bad_index.status().code(), StatusCode::kCorruption);
  EXPECT_NE(bad_index.status().message().find(":2:"), std::string::npos)
      << bad_index.status().message();
  // Negative index (the sign makes it non-digit).
  {
    std::ofstream out(path);
    out << "index,x,y,t\n-1,1,2,3\n";
  }
  EXPECT_FALSE(ReadCompressedCsv(path).ok());
  // Index too long to be a uint64.
  {
    std::ofstream out(path);
    out << "index,x,y,t\n99999999999999999999999,1,2,3\n";
  }
  EXPECT_FALSE(ReadCompressedCsv(path).ok());
  // Too few fields.
  {
    std::ofstream out(path);
    out << "index,x,y,t\n1,2,3\n";
  }
  EXPECT_FALSE(ReadCompressedCsv(path).ok());
  // Non-finite coordinate.
  {
    std::ofstream out(path);
    out << "index,x,y,t\n1,inf,2,3\n";
  }
  EXPECT_FALSE(ReadCompressedCsv(path).ok());
  // Missing file.
  EXPECT_FALSE(ReadCompressedCsv("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace bqs
