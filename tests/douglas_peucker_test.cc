// Douglas-Peucker: error bound, minimality on simple shapes, edge cases.
#include "baselines/douglas_peucker.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

using testing_util::JaggedWalk;
using testing_util::NoisyLine;

TEST(DouglasPeuckerTest, SmallInputs) {
  DouglasPeucker dp(DpOptions{1.0, DistanceMetric::kPointToLine});
  EXPECT_TRUE(dp.Compress({}).empty());
  Trajectory one{TrackPoint{{0, 0}, 0, {}}};
  EXPECT_EQ(dp.Compress(one).size(), 1u);
  Trajectory two{TrackPoint{{0, 0}, 0, {}}, TrackPoint{{5, 5}, 1, {}}};
  EXPECT_EQ(dp.Compress(two).size(), 2u);
}

TEST(DouglasPeuckerTest, StraightLineKeepsEndpointsOnly) {
  const Trajectory walk = NoisyLine(1, 300, 0.5);
  DouglasPeucker dp(DpOptions{5.0, DistanceMetric::kPointToLine});
  const CompressedTrajectory c = dp.Compress(walk);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.keys.front().index, 0u);
  EXPECT_EQ(c.keys.back().index, walk.size() - 1);
}

TEST(DouglasPeuckerTest, KnownZigZag) {
  // Triangle wave of amplitude 4: kept at eps >= 4, split below.
  Trajectory t;
  for (int i = 0; i <= 8; ++i) {
    t.push_back(TrackPoint{{i * 10.0, (i % 2 == 0) ? 0.0 : 4.0},
                           static_cast<double>(i), {}});
  }
  DouglasPeucker loose(DpOptions{4.5, DistanceMetric::kPointToLine});
  EXPECT_EQ(loose.Compress(t).size(), 2u);
  DouglasPeucker tight(DpOptions{1.0, DistanceMetric::kPointToLine});
  EXPECT_EQ(tight.Compress(t).size(), t.size());
}

class DpErrorBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(DpErrorBoundTest, ErrorBounded) {
  const double epsilon = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Trajectory walk = JaggedWalk(seed, 2000);
    DouglasPeucker dp(DpOptions{epsilon, DistanceMetric::kPointToLine});
    const CompressedTrajectory c = dp.Compress(walk);
    const DeviationReport report =
        EvaluateCompression(walk, c, DistanceMetric::kPointToLine);
    EXPECT_LE(report.max_deviation, epsilon * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Tolerances, DpErrorBoundTest,
                         ::testing::Values(2.0, 5.0, 10.0, 25.0));

TEST(DouglasPeuckerTest, SegmentMetricErrorBounded) {
  const Trajectory walk = JaggedWalk(4, 1500);
  DouglasPeucker dp(DpOptions{6.0, DistanceMetric::kPointToSegment});
  const CompressedTrajectory c = dp.Compress(walk);
  const DeviationReport report =
      EvaluateCompression(walk, c, DistanceMetric::kPointToSegment);
  EXPECT_LE(report.max_deviation, 6.0 * (1.0 + 1e-9));
}

TEST(DouglasPeuckerTest, IdempotentOnOwnOutput) {
  const Trajectory walk = JaggedWalk(5, 1000);
  DouglasPeucker dp(DpOptions{8.0, DistanceMetric::kPointToLine});
  const CompressedTrajectory once = dp.Compress(walk);
  Trajectory kept;
  for (const KeyPoint& k : once.keys) kept.push_back(k.point);
  const CompressedTrajectory twice = dp.Compress(kept);
  EXPECT_EQ(twice.size(), once.size());
}

TEST(DouglasPeuckerTest, MonotoneInEpsilon) {
  const Trajectory walk = JaggedWalk(6, 1500);
  std::size_t prev = SIZE_MAX;
  for (double eps : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    DouglasPeucker dp(DpOptions{eps, DistanceMetric::kPointToLine});
    const std::size_t n = dp.Compress(walk).size();
    EXPECT_LE(n, prev) << "more points kept at looser tolerance " << eps;
    prev = n;
  }
}

TEST(DouglasPeuckerTest, DeepAdversarialZigZagDoesNotOverflow) {
  // Alternating spikes with decreasing amplitude force maximally unbalanced
  // splits: each level peels a point or two off the front, so a recursive
  // implementation would nest thousands of frames deep. The explicit stack
  // must walk it to completion, and at a tolerance below every local spike
  // nothing is droppable.
  constexpr std::size_t n = 6000;
  Trajectory t;
  t.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;
    t.push_back(TrackPoint{{static_cast<double>(i),
                            sign * 10.0 * static_cast<double>(n - i)},
                           static_cast<double>(i),
                           {}});
  }
  DouglasPeucker dp(DpOptions{1.0, DistanceMetric::kPointToLine});
  const CompressedTrajectory c = dp.Compress(t);
  EXPECT_EQ(c.size(), n) << "every zigzag vertex deviates far beyond eps";
  const DeviationReport report =
      EvaluateCompression(t, c, DistanceMetric::kPointToLine);
  EXPECT_LE(report.max_deviation, 1.0);
}

TEST(DouglasPeuckerTest, IndicesAreStrictlyIncreasing) {
  const Trajectory walk = JaggedWalk(7, 800);
  DouglasPeucker dp(DpOptions{3.0, DistanceMetric::kPointToLine});
  const CompressedTrajectory c = dp.Compress(walk);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c.keys[i - 1].index, c.keys[i].index);
  }
}

}  // namespace
}  // namespace bqs
