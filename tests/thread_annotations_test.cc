// Tests for common/thread_annotations.h: the annotated Mutex/MutexLock
// wrappers must behave exactly like the std primitives they wrap, the
// ThreadRole capability must stay a zero-cost token, and — on compilers
// without the capability attributes (gcc builds this repo's tier-1 CI) —
// every macro must expand to nothing. The analysis itself is exercised by
// the clang thread-safety CI job, where a violation is a compile error;
// what this suite locks in is that the annotations never change runtime
// behaviour.

#include "common/thread_annotations.h"

#include <condition_variable>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace bqs {
namespace {

// On non-clang compilers the annotation macros must vanish entirely:
// stringify an application of each and check the expansion is empty.
// (Under clang the attributes are real and this block is skipped.)
#ifndef __clang__
#define BQS_STRINGIFY_IMPL(x) #x
#define BQS_STRINGIFY(x) BQS_STRINGIFY_IMPL(x)

TEST(ThreadAnnotationsTest, MacrosExpandToNothingOffClang) {
  EXPECT_STREQ("", BQS_STRINGIFY(CAPABILITY("mutex")));
  EXPECT_STREQ("", BQS_STRINGIFY(SCOPED_CAPABILITY));
  EXPECT_STREQ("", BQS_STRINGIFY(GUARDED_BY(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(PT_GUARDED_BY(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(REQUIRES(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(REQUIRES(mu, other)));
  EXPECT_STREQ("", BQS_STRINGIFY(REQUIRES_SHARED(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(ACQUIRE(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(RELEASE(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(TRY_ACQUIRE(true, mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(EXCLUDES(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(ASSERT_CAPABILITY(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(RETURN_CAPABILITY(mu)));
  EXPECT_STREQ("", BQS_STRINGIFY(NO_THREAD_SAFETY_ANALYSIS));
}

#undef BQS_STRINGIFY
#undef BQS_STRINGIFY_IMPL
#endif  // !__clang__

TEST(ThreadAnnotationsTest, ThreadRoleIsAZeroSizeToken) {
  // Empty class: the capability exists purely for the analysis. (sizeof
  // an empty class is 1 by the standard; the point is no added state.)
  EXPECT_EQ(sizeof(ThreadRole), 1u);
  ThreadRole role;
  AssumeRole(role);  // Must be a runtime no-op on every compiler.
}

TEST(ThreadAnnotationsTest, MutexProvidesExclusion) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2500;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(ThreadAnnotationsTest, TryLockBehavesLikeStdMutex) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ThreadAnnotationsTest, MutexLockWorksWithConditionVariable) {
  // The native() escape hatch exists exactly for cv waits — the pattern
  // SpscRing and FleetEngine::WaitIdle use.
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    cv.wait(lock.native(), [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(ThreadAnnotationsTest, RolesAreDistinctObjects) {
  // Each role is its own capability: the analysis distinguishes
  // ring.producer_role from ring.consumer_role only because they are
  // distinct members. Asserting one must not require the other to exist.
  ThreadRole producer;
  ThreadRole consumer;
  AssumeRole(producer);
  AssumeRole(consumer);
  EXPECT_NE(static_cast<const void*>(&producer),
            static_cast<const void*>(&consumer));
}

}  // namespace
}  // namespace bqs
