// Plane3 and three-plane intersection.
#include "geometry/plane.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(PlaneTest, FromPointsNormalAndOffset) {
  const auto plane = Plane3::FromPoints({0, 0, 1}, {1, 0, 1}, {0, 1, 1});
  ASSERT_TRUE(plane.has_value());
  // z = 1 plane, unit normal +z.
  EXPECT_NEAR(plane->normal.z, 1.0, 1e-12);
  EXPECT_NEAR(plane->Eval({5, -3, 1}), 0.0, 1e-12);
  EXPECT_NEAR(plane->Eval({0, 0, 3}), 2.0, 1e-12);
  EXPECT_NEAR(plane->Eval({0, 0, 0}), -1.0, 1e-12);
}

TEST(PlaneTest, FromPointsRejectsCollinear) {
  EXPECT_FALSE(
      Plane3::FromPoints({0, 0, 0}, {1, 1, 1}, {2, 2, 2}).has_value());
  EXPECT_FALSE(
      Plane3::FromPoints({1, 2, 3}, {1, 2, 3}, {4, 5, 6}).has_value());
}

TEST(PlaneTest, FromPointNormal) {
  const Plane3 plane = Plane3::FromPointNormal({0, 0, 5}, {0, 0, 2});
  EXPECT_DOUBLE_EQ(plane.Eval({0, 0, 5}), 0.0);
  EXPECT_GT(plane.Eval({0, 0, 9}), 0.0);
  EXPECT_LT(plane.Eval({0, 0, 1}), 0.0);
}

TEST(PlaneTest, NormalizedGivesSignedDistance) {
  const Plane3 plane = Plane3::FromPointNormal({0, 0, 5}, {0, 0, 2});
  const Plane3 unit = plane.Normalized();
  EXPECT_NEAR(unit.normal.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(unit.Eval({0, 0, 8}), 3.0, 1e-12);
}

TEST(PlaneTest, IntersectAxisPlanes) {
  const Plane3 px = Plane3::FromPointNormal({1, 0, 0}, {1, 0, 0});
  const Plane3 py = Plane3::FromPointNormal({0, 2, 0}, {0, 1, 0});
  const Plane3 pz = Plane3::FromPointNormal({0, 0, 3}, {0, 0, 1});
  const auto p = IntersectPlanes(px, py, pz);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(Distance(*p, {1, 2, 3}), 0.0, 1e-12);
}

TEST(PlaneTest, IntersectRejectsParallel) {
  const Plane3 a = Plane3::FromPointNormal({0, 0, 0}, {0, 0, 1});
  const Plane3 b = Plane3::FromPointNormal({0, 0, 5}, {0, 0, 1});
  const Plane3 c = Plane3::FromPointNormal({0, 0, 0}, {1, 0, 0});
  EXPECT_FALSE(IntersectPlanes(a, b, c).has_value());
}

TEST(PlaneTest, IntersectionSatisfiesAllThreePlanes) {
  Rng rng(31);
  int found = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const auto rand_plane = [&] {
      Vec3 n{rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
      if (n.Norm() < 1e-3) n = {1, 0, 0};
      return Plane3::FromPointNormal(
          {rng.Uniform(-10, 10), rng.Uniform(-10, 10), rng.Uniform(-10, 10)},
          n.Normalized());
    };
    const Plane3 p0 = rand_plane();
    const Plane3 p1 = rand_plane();
    const Plane3 p2 = rand_plane();
    const auto x = IntersectPlanes(p0, p1, p2);
    if (!x.has_value()) continue;
    ++found;
    EXPECT_NEAR(p0.Eval(*x), 0.0, 1e-6);
    EXPECT_NEAR(p1.Eval(*x), 0.0, 1e-6);
    EXPECT_NEAR(p2.Eval(*x), 0.0, 1e-6);
  }
  EXPECT_GT(found, 250);
}

}  // namespace
}  // namespace bqs
