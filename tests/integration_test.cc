// Cross-module integration: every error-bounded algorithm, on every
// dataset, at every tolerance, must respect the bound end to end; the
// paper's qualitative orderings must hold on the simulated workloads.
#include <gtest/gtest.h>

#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "eval/runner.h"
#include "storage/platform.h"
#include "storage/trajectory_store.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

const std::vector<Dataset>& SmallDatasets() {
  static const std::vector<Dataset>* datasets =
      new std::vector<Dataset>(BuildAllDatasets(0.08));
  return *datasets;
}

class ErrorBoundMatrixTest
    : public ::testing::TestWithParam<std::tuple<AlgorithmId, double>> {};

TEST_P(ErrorBoundMatrixTest, EveryCellIsBounded) {
  const auto [algorithm, epsilon] = GetParam();
  for (const Dataset& dataset : SmallDatasets()) {
    const SweepRow row = RunCell(algorithm, dataset, epsilon);
    EXPECT_TRUE(row.error_bounded)
        << row.algorithm << " on " << row.dataset << " at eps=" << epsilon
        << " deviated " << row.max_deviation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsByTolerance, ErrorBoundMatrixTest,
    ::testing::Combine(::testing::Values(AlgorithmId::kBqs,
                                         AlgorithmId::kFbqs,
                                         AlgorithmId::kBdp,
                                         AlgorithmId::kBgd, AlgorithmId::kDp),
                       ::testing::Values(5.0, 10.0, 20.0)),
    [](const auto& naming_info) {
      const AlgorithmId id = std::get<0>(naming_info.param);
      const double eps = std::get<1>(naming_info.param);
      std::string name(AlgorithmName(id));
      name += "Eps" + std::to_string(static_cast<int>(eps));
      // '-' is not allowed in test names.
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(IntegrationTest, PaperOrderingBqsBestThenFbqs) {
  // Fig. 7's headline ordering: BQS ~ FBQS << BDP/BGD on compressed size.
  // BQS <= FBQS is a strong tendency, not a theorem (greedy inclusion can
  // occasionally cost points later), so the pairwise check carries slack.
  for (const Dataset& dataset : SmallDatasets()) {
    const SweepRow bqs = RunCell(AlgorithmId::kBqs, dataset, 10.0);
    const SweepRow fbqs = RunCell(AlgorithmId::kFbqs, dataset, 10.0);
    const SweepRow bdp = RunCell(AlgorithmId::kBdp, dataset, 10.0);
    const SweepRow bgd = RunCell(AlgorithmId::kBgd, dataset, 10.0);
    EXPECT_LE(bqs.points_out,
              static_cast<std::size_t>(
                  static_cast<double>(fbqs.points_out) * 1.15) +
                  5)
        << dataset.name;
    EXPECT_LT(fbqs.points_out, bdp.points_out) << dataset.name;
    EXPECT_LT(bqs.points_out, bdp.points_out) << dataset.name;
    // FBQS < BGD holds on the empirical-style datasets (Fig. 7); on the
    // heavily jittered synthetic walk the sound bounds make FBQS split
    // conservatively, so only BQS is asserted against BGD there.
    if (dataset.name != "synthetic") {
      EXPECT_LT(fbqs.points_out, bgd.points_out) << dataset.name;
    }
    EXPECT_LE(bqs.points_out, bgd.points_out) << dataset.name;
  }
}

TEST(IntegrationTest, PruningPowerIsHighOnRealisticData) {
  // Fig. 6: pruning power generally above 0.9 on the empirical datasets.
  // The synthetic walk carries heavy per-step jitter (for the DR study) so
  // a weaker floor applies there.
  for (const Dataset& dataset : SmallDatasets()) {
    const SweepRow bqs = RunCell(AlgorithmId::kBqs, dataset, 10.0);
    const double floor = dataset.name == "synthetic" ? 0.70 : 0.90;
    EXPECT_GT(bqs.pruning_power, floor) << dataset.name;
  }
}

TEST(IntegrationTest, CompressionImprovesWithTolerance) {
  for (const Dataset& dataset : SmallDatasets()) {
    std::size_t prev = SIZE_MAX;
    for (double eps : {2.0, 5.0, 10.0, 20.0}) {
      const SweepRow row =
          RunCell(AlgorithmId::kBqs, dataset, eps, 32, /*verify=*/false);
      EXPECT_LE(row.points_out, prev) << dataset.name << " eps=" << eps;
      prev = row.points_out;
    }
  }
}

TEST(IntegrationTest, EndToEndDevicePipeline) {
  // Stream a bat dataset through FBQS into the flash store, then merge and
  // age in the trajectory store — the full on-device life cycle.
  const Dataset& bat = SmallDatasets()[0];
  FbqsCompressor fbqs(BqsOptions{.epsilon = 10.0});
  const CompressedTrajectory compressed = CompressAll(fbqs, bat.stream);

  PlatformSpec spec;
  FlashStore flash(spec);
  std::size_t stored = 0;
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    if (!flash.AppendSample()) break;
    ++stored;
  }
  EXPECT_GT(stored, 0u);

  TrajectoryStore store;
  const auto append = store.Append(compressed);
  ASSERT_TRUE(append.ok()) << append.status().ToString();
  EXPECT_EQ(append.value().segments_in, compressed.size() - 1);
  EXPECT_GT(store.segment_count(), 0u);

  const std::size_t before = store.segment_count();
  store.Age(40.0);
  EXPECT_LE(store.segment_count(), before);
}

TEST(IntegrationTest, OperationalTimeRanksByCompressionRate) {
  // Table II's logic: better compression -> longer operational time.
  const Dataset& bat = SmallDatasets()[0];
  const SweepRow bqs = RunCell(AlgorithmId::kBqs, bat, 10.0);
  const SweepRow bdp = RunCell(AlgorithmId::kBdp, bat, 10.0);
  const PlatformSpec spec;
  EXPECT_GT(EstimateOperationalDays(spec, bqs.compression_rate),
            EstimateOperationalDays(spec, bdp.compression_rate));
}

TEST(IntegrationTest, FbqsRuntimeIndependentOfBufferKnob) {
  // Table III: FBQS has no buffer; its results must not change with the
  // buffer_size parameter that reconfigures BDP/BGD.
  const Dataset& dataset = SmallDatasets()[2];
  const SweepRow a =
      RunCell(AlgorithmId::kFbqs, dataset, 10.0, 32, /*verify=*/false);
  const SweepRow b =
      RunCell(AlgorithmId::kFbqs, dataset, 10.0, 256, /*verify=*/false);
  EXPECT_EQ(a.points_out, b.points_out);
}

}  // namespace
}  // namespace bqs
