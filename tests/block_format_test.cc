// Columnar block codec: a decoded block must reproduce the exact
// WalCheckpoints it was encoded from (checkpoint boundaries included —
// the bit-level acked-prefix contract survives compaction), and the
// decoder must be total: truncations, flips, and payloads whose embedded
// metadata lies about the points all reject.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/block_format.h"

namespace bqs {
namespace {

std::vector<wal::WalCheckpoint> SampleRun() {
  std::vector<wal::WalCheckpoint> run;
  uint64_t seq = 10;
  uint64_t index = 0;
  int64_t qt = -100, qx = 500000, qy = -500000;
  for (int c = 0; c < 5; ++c) {
    wal::WalCheckpoint ckpt;
    ckpt.device = 42;
    ckpt.seq = seq;
    seq += 1 + static_cast<uint64_t>(c);  // gaps are legal
    for (int i = 0; i < 3 + c; ++i) {
      wal::WalPoint p;
      p.index = index;
      index += 2;
      qt += 7;
      qx += (i % 2 == 0) ? 13 : -5;
      qy -= 11;
      p.qt = qt;
      p.qx = qx;
      p.qy = qy;
      ckpt.points.push_back(p);
    }
    run.push_back(std::move(ckpt));
  }
  return run;
}

std::span<const uint8_t> PayloadOf(const std::string& framed) {
  return {reinterpret_cast<const uint8_t*>(framed.data()) +
              blk::kBlockHeaderBytes,
          framed.size() - blk::kBlockHeaderBytes};
}

TEST(BlockFormatTest, ComputeBlockMeta) {
  const std::vector<wal::WalCheckpoint> run = SampleRun();
  const blk::BlockMeta m = blk::ComputeBlockMeta(run);
  EXPECT_EQ(m.device, 42u);
  EXPECT_EQ(m.first_seq, run.front().seq);
  EXPECT_EQ(m.last_seq, run.back().seq);
  EXPECT_EQ(m.checkpoint_count, run.size());
  uint64_t points = 0;
  int64_t qt_min = run[0].points[0].qt, qt_max = qt_min;
  for (const wal::WalCheckpoint& c : run) {
    points += c.points.size();
    for (const wal::WalPoint& p : c.points) {
      qt_min = std::min(qt_min, p.qt);
      qt_max = std::max(qt_max, p.qt);
    }
  }
  EXPECT_EQ(m.point_count, points);
  EXPECT_EQ(m.qt_min, qt_min);
  EXPECT_EQ(m.qt_max, qt_max);
}

TEST(BlockFormatTest, RoundTripIsExact) {
  const std::vector<wal::WalCheckpoint> run = SampleRun();
  std::string framed;
  blk::BlockMeta encoded_meta;
  blk::EncodeBlock(run, &framed, &encoded_meta);

  blk::BlockMeta meta;
  std::vector<wal::WalCheckpoint> decoded;
  ASSERT_TRUE(blk::DecodeBlockPayload(PayloadOf(framed), &meta, &decoded));
  EXPECT_TRUE(meta == encoded_meta);
  ASSERT_EQ(decoded.size(), run.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_TRUE(decoded[i] == run[i]) << "checkpoint " << i;
  }
}

TEST(BlockFormatTest, HostileInt64PatternsRoundTrip) {
  // Extremes and wrap-adjacent values: the wrap-safe delta coding must
  // reproduce them bit-exactly, like the WAL record codec does.
  wal::WalCheckpoint ckpt;
  ckpt.device = 1;
  ckpt.seq = 5;
  const int64_t values[] = {INT64_MIN, INT64_MAX, 0, -1, 1,
                            INT64_MIN + 1, INT64_MAX - 1};
  uint64_t index = UINT64_MAX - 3;
  for (const int64_t v : values) {
    wal::WalPoint p;
    p.index = index++;  // wraps through UINT64_MAX
    p.qt = v;
    p.qx = -v == INT64_MIN ? v : -v;
    p.qy = v;
    ckpt.points.push_back(p);
  }
  const std::vector<wal::WalCheckpoint> run = {ckpt};
  std::string framed;
  blk::EncodeBlock(run, &framed);
  blk::BlockMeta meta;
  std::vector<wal::WalCheckpoint> decoded;
  ASSERT_TRUE(blk::DecodeBlockPayload(PayloadOf(framed), &meta, &decoded));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(decoded[0] == ckpt);
}

TEST(BlockFormatTest, EveryTruncationRejects) {
  std::string framed;
  blk::EncodeBlock(SampleRun(), &framed);
  const std::span<const uint8_t> payload = PayloadOf(framed);
  blk::BlockMeta meta;
  std::vector<wal::WalCheckpoint> decoded;
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        blk::DecodeBlockPayload(payload.subspan(0, cut), &meta, &decoded))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(BlockFormatTest, LyingEmbeddedMetadataRejects) {
  // A payload that decodes but whose embedded bbox/meta disagrees with
  // the points must reject: the columns are decoded, re-measured, and
  // compared. Rebuild the payload with a tampered bbox varint.
  const std::vector<wal::WalCheckpoint> run = SampleRun();
  const blk::BlockMeta m = blk::ComputeBlockMeta(run);

  // Re-encode by hand with qt_min off by one.
  std::string payload;
  varint::PutU64(&payload, m.device);
  varint::PutU64(&payload, m.checkpoint_count);
  uint64_t prev_seq = 0;
  bool first = true;
  for (const wal::WalCheckpoint& c : run) {
    if (first) {
      varint::PutU64(&payload, c.seq);
      first = false;
    } else {
      varint::PutI64(&payload, static_cast<int64_t>(c.seq - prev_seq));
    }
    prev_seq = c.seq;
  }
  for (const wal::WalCheckpoint& c : run) {
    varint::PutU64(&payload, c.points.size());
  }
  varint::PutU64(&payload, m.point_count);
  varint::PutI64(&payload, m.qt_min - 1);  // the lie
  varint::PutI64(&payload, m.qt_max);
  varint::PutI64(&payload, m.qx_min);
  varint::PutI64(&payload, m.qx_max);
  varint::PutI64(&payload, m.qy_min);
  varint::PutI64(&payload, m.qy_max);
  // Columns, copied from the real encoder's framed output: cheaper to
  // just encode the true block and splice its column bytes. Encode true
  // payload, find where the bbox ends, and reuse the suffix.
  std::string true_framed;
  blk::EncodeBlock(run, &true_framed);
  const std::string true_payload(
      true_framed.begin() + static_cast<std::ptrdiff_t>(blk::kBlockHeaderBytes),
      true_framed.end());
  // The true payload's prefix up to the bbox has the same length as ours
  // except the tampered varint may differ in size; rebuild instead: the
  // suffix after the 6 bbox varints is the column data.
  {
    const uint8_t* p =
        reinterpret_cast<const uint8_t*>(true_payload.data());
    const uint8_t* const end = p + true_payload.size();
    uint64_t u;
    int64_t s;
    ASSERT_TRUE(varint::GetU64(&p, end, &u));            // device
    uint64_t n = 0;
    ASSERT_TRUE(varint::GetU64(&p, end, &n));            // checkpoint_count
    for (uint64_t i = 0; i < n; ++i) {
      if (i == 0) ASSERT_TRUE(varint::GetU64(&p, end, &u));
      else ASSERT_TRUE(varint::GetI64(&p, end, &s));
    }
    for (uint64_t i = 0; i < n; ++i) ASSERT_TRUE(varint::GetU64(&p, end, &u));
    ASSERT_TRUE(varint::GetU64(&p, end, &u));            // point_count
    for (int i = 0; i < 6; ++i) ASSERT_TRUE(varint::GetI64(&p, end, &s));
    payload.append(reinterpret_cast<const char*>(p),
                   static_cast<std::size_t>(end - p));
  }
  blk::BlockMeta meta;
  std::vector<wal::WalCheckpoint> decoded;
  EXPECT_FALSE(blk::DecodeBlockPayload(
      {reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
      &meta, &decoded));
}

TEST(BlockFileHeaderTest, RoundTripAndRejections) {
  wal::WalQuantization quant;
  quant.time_quantum = 0.25;
  quant.coord_quantum = 0.125;
  std::string bytes;
  blk::EncodeBlockFileHeader(quant, /*block_count=*/9, &bytes);
  ASSERT_EQ(bytes.size(), blk::kBlockFileHeaderBytes);

  blk::BlockFileHeaderInfo info;
  ASSERT_TRUE(blk::DecodeBlockFileHeader(
      {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()}, &info));
  EXPECT_EQ(info.version, blk::kBlockFormatVersion);
  EXPECT_EQ(info.block_count, 9u);
  EXPECT_DOUBLE_EQ(info.quant.time_quantum, 0.25);
  EXPECT_DOUBLE_EQ(info.quant.coord_quantum, 0.125);

  // Every byte flip rejects (magic, CRC, or the CRC'd fields).
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_FALSE(blk::DecodeBlockFileHeader(
        {reinterpret_cast<const uint8_t*>(corrupt.data()), corrupt.size()},
        &info))
        << "flip at byte " << i;
  }
  // Short input rejects.
  EXPECT_FALSE(blk::DecodeBlockFileHeader(
      {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size() - 1},
      &info));
}

}  // namespace
}  // namespace bqs
