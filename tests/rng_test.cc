// Deterministic RNG wrapper.
#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace bqs {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
    const int64_t k = rng.UniformInt(3, 9);
    EXPECT_GE(k, 3);
    EXPECT_LE(k, 9);
  }
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Normal(4.0, 3.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(RngTest, ExponentialMatchesMean) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.Exponential(12.0));
  EXPECT_NEAR(s.mean(), 12.0, 0.5);
  EXPECT_GE(s.min(), 0.0);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(11);
  Rng child1(parent.Fork());
  Rng child2(parent.Fork());
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child1.UniformInt(0, 1000000) == child2.UniformInt(0, 1000000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace bqs
