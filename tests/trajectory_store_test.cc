// Trajectory store: merging dedup and error-bounded ageing (Section V-F).
#include "storage/trajectory_store.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

CompressedTrajectory MakeCompressed(std::initializer_list<Vec2> points,
                                    double t0 = 0.0) {
  CompressedTrajectory c;
  uint64_t index = 0;
  double t = t0;
  for (const Vec2& p : points) {
    c.keys.push_back(KeyPoint{TrackPoint{p, t, {}}, index});
    index += 10;
    t += 60.0;
  }
  return c;
}

TEST(SegmentHausdorffTest, BasicProperties) {
  // Identical segments.
  EXPECT_DOUBLE_EQ(SegmentHausdorff({0, 0}, {10, 0}, {0, 0}, {10, 0}), 0.0);
  // Reversed orientation is still the same path.
  EXPECT_DOUBLE_EQ(SegmentHausdorff({0, 0}, {10, 0}, {10, 0}, {0, 0}), 0.0);
  // Parallel offset.
  EXPECT_DOUBLE_EQ(SegmentHausdorff({0, 0}, {10, 0}, {0, 3}, {10, 3}), 3.0);
  // Sub-segment: distance is the uncovered overhang.
  EXPECT_DOUBLE_EQ(SegmentHausdorff({0, 0}, {10, 0}, {0, 0}, {5, 0}), 5.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(SegmentHausdorff({0, 0}, {4, 2}, {1, 7}, {-3, 2}),
                   SegmentHausdorff({1, 7}, {-3, 2}, {0, 0}, {4, 2}));
}

TEST(TrajectoryStoreTest, AppendStoresSegments) {
  TrajectoryStore store;
  const auto result =
      store.Append(MakeCompressed({{0, 0}, {100, 0}, {200, 50}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().segments_in, 2u);
  EXPECT_EQ(result.value().segments_stored, 2u);
  EXPECT_EQ(result.value().segments_merged, 0u);
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_EQ(store.visit_total(), 2u);
  EXPECT_GT(store.StorageBytes(), 0.0);
}

TEST(TrajectoryStoreTest, RepeatTripMergesInsteadOfStoring) {
  // The paper's motivating pattern: the same commute every day.
  TrajectoryStoreOptions options;
  options.merge_tolerance = 15.0;
  TrajectoryStore store(options);
  ASSERT_TRUE(
      store.Append(MakeCompressed({{0, 0}, {500, 0}, {500, 400}})).ok());
  const std::size_t before = store.segment_count();

  // Same trip again with ~5 m GPS wobble.
  const auto result = store.Append(
      MakeCompressed({{3, 4}, {504, -3}, {498, 405}}, 86400.0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().segments_merged, 2u);
  EXPECT_EQ(result.value().segments_stored, 0u);
  EXPECT_EQ(store.segment_count(), before);
  // Visits accumulate on the stored segments.
  uint64_t max_visits = 0;
  for (const auto& seg : store.segments()) {
    if (seg.alive) max_visits = std::max<uint64_t>(max_visits, seg.visits);
  }
  EXPECT_EQ(max_visits, 2u);
}

TEST(TrajectoryStoreTest, DifferentTripStoresNewSegments) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Append(MakeCompressed({{0, 0}, {500, 0}})).ok());
  const auto result =
      store.Append(MakeCompressed({{0, 200}, {500, 200}}, 86400.0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().segments_merged, 0u);
  EXPECT_EQ(result.value().segments_stored, 1u);
  EXPECT_EQ(store.segment_count(), 2u);
}

TEST(TrajectoryStoreTest, FindSimilarRespectsTolerance) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Append(MakeCompressed({{0, 0}, {100, 0}})).ok());
  EXPECT_EQ(store.FindSimilar({0, 5}, {100, 5}, 10.0).size(), 1u);
  EXPECT_TRUE(store.FindSimilar({0, 50}, {100, 50}, 10.0).empty());
}

TEST(TrajectoryStoreTest, AgeingDropsPointsAndStaysBounded) {
  // Store a wiggly polyline compressed at a tight tolerance, then age it
  // with a looser one: points must drop and the old key points must stay
  // within the new tolerance of the aged polyline.
  TrajectoryStoreOptions options;
  options.merge_tolerance = 0.5;  // keep merging out of the way
  TrajectoryStore store(options);

  Rng rng(5);
  std::vector<Vec2> keys;
  Trajectory original_keys;
  for (int i = 0; i <= 40; ++i) {
    const Vec2 p{i * 25.0, rng.Uniform(-8.0, 8.0)};
    keys.push_back(p);
    original_keys.push_back(TrackPoint{p, i * 60.0, {}});
  }
  CompressedTrajectory c;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    c.keys.push_back(KeyPoint{original_keys[i], i});
  }
  ASSERT_TRUE(store.Append(c).ok());
  const std::size_t before = store.segment_count();

  const std::size_t dropped = store.Age(40.0);
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(store.segment_count(), before);

  // Rebuild the aged polyline and verify the old keys against it.
  Trajectory aged;
  for (const auto& seg : store.segments()) {
    if (!seg.alive) continue;
    if (aged.empty()) aged.push_back(TrackPoint{seg.a, seg.t_start, {}});
    aged.push_back(TrackPoint{seg.b, seg.t_end, {}});
  }
  ASSERT_GE(aged.size(), 2u);
  // Every original key point is within the ageing tolerance of the aged
  // polyline (checked against the nearest aged segment).
  for (const TrackPoint& p : original_keys) {
    double best = 1e100;
    for (std::size_t i = 0; i + 1 < aged.size(); ++i) {
      best = std::min(best, PointToSegmentDistance(p.pos, aged[i].pos,
                                                   aged[i + 1].pos));
    }
    EXPECT_LE(best, 40.0 * (1.0 + 1e-9));
  }
}

TEST(TrajectoryStoreTest, AgeingIsIdempotentAtSameTolerance) {
  TrajectoryStore store(TrajectoryStoreOptions{.merge_tolerance = 0.5});
  Rng rng(6);
  CompressedTrajectory c;
  for (int i = 0; i <= 30; ++i) {
    c.keys.push_back(KeyPoint{
        TrackPoint{{i * 30.0, rng.Uniform(-10.0, 10.0)}, i * 60.0, {}},
        static_cast<uint64_t>(i)});
  }
  ASSERT_TRUE(store.Append(c).ok());
  store.Age(50.0);
  const std::size_t after_first = store.segment_count();
  const std::size_t dropped_again = store.Age(50.0);
  EXPECT_EQ(dropped_again, 0u);
  EXPECT_EQ(store.segment_count(), after_first);
}

TEST(TrajectoryStoreTest, StorageBytesShrinkWithAgeing) {
  TrajectoryStore store(TrajectoryStoreOptions{.merge_tolerance = 0.5});
  Rng rng(7);
  CompressedTrajectory c;
  for (int i = 0; i <= 50; ++i) {
    c.keys.push_back(KeyPoint{
        TrackPoint{{i * 20.0, rng.Uniform(-5.0, 5.0)}, i * 60.0, {}},
        static_cast<uint64_t>(i)});
  }
  ASSERT_TRUE(store.Append(c).ok());
  const double before = store.StorageBytes();
  store.Age(30.0);
  EXPECT_LT(store.StorageBytes(), before);
}

TEST(TrajectoryStoreTest, TinyInputsAreRejectedNotClamped) {
  // Appending nothing used to silently succeed with an all-zero result;
  // now it is an error the caller can see, and the store stays untouched.
  TrajectoryStore store;
  const auto r1 = store.Append(CompressedTrajectory{});
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  const auto r2 = store.Append(MakeCompressed({{1, 1}}));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.segment_count(), 0u);
  EXPECT_EQ(store.visit_total(), 0u);
  EXPECT_EQ(store.Age(100.0), 0u);
}

TEST(TrajectoryStoreTest, NonFiniteKeyPointsAreRejected) {
  TrajectoryStore store;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();

  CompressedTrajectory bad_pos = MakeCompressed({{0, 0}, {100, 0}});
  bad_pos.keys[1].point.pos.x = nan;
  const auto r1 = store.Append(bad_pos);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  CompressedTrajectory bad_t = MakeCompressed({{0, 0}, {100, 0}});
  bad_t.keys[0].point.t = inf;
  ASSERT_FALSE(store.Append(bad_t).ok());

  // The error path must leave no partial state behind.
  EXPECT_EQ(store.segment_count(), 0u);
  EXPECT_EQ(store.visit_total(), 0u);
  EXPECT_TRUE(store.FindSimilar({0, 0}, {100, 0}, 50.0).empty());
}

}  // namespace
}  // namespace bqs
