// Camazotz platform model: the Table II operational-time arithmetic.
#include "storage/platform.h"

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(PlatformTest, DefaultsMatchPaperHardware) {
  const PlatformSpec spec;
  EXPECT_DOUBLE_EQ(spec.flash_bytes, 1.0e6);
  EXPECT_DOUBLE_EQ(spec.gps_budget_bytes, 50.0e3);
  EXPECT_DOUBLE_EQ(spec.bytes_per_sample, 12.0);
  EXPECT_DOUBLE_EQ(spec.sample_interval_s, 60.0);
  EXPECT_DOUBLE_EQ(spec.ram_bytes, 4096.0);
}

TEST(PlatformTest, UncompressedBaseline) {
  // 1440 fixes/day * 12 B = 17,280 B/day -> ~2.9 days on 50 KB.
  const PlatformSpec spec;
  EXPECT_NEAR(EstimateOperationalDays(spec, 1.0), 2.894, 0.01);
}

TEST(PlatformTest, TableTwoMagnitudes) {
  // Paper Table II: BQS at 4.8% -> 62 days; BDP at 6.65% -> 45 days.
  const PlatformSpec spec;
  EXPECT_NEAR(EstimateOperationalDays(spec, 0.048), 60.3, 1.5);
  EXPECT_NEAR(EstimateOperationalDays(spec, 0.0665), 43.5, 1.5);
  // Ratio between the best and worst (the paper's 41% headline) holds.
  const double ratio = EstimateOperationalDays(spec, 0.048) /
                       EstimateOperationalDays(spec, 0.0675);
  EXPECT_NEAR(ratio, 1.41, 0.03);
}

TEST(PlatformTest, DegenerateRatesClamp) {
  const PlatformSpec spec;
  EXPECT_GT(EstimateOperationalDays(spec, 0.0), 1e6);
  EXPECT_GT(EstimateOperationalDays(spec, 1e-9), 1e6);
}

TEST(FlashStoreTest, FillsAndRefuses) {
  PlatformSpec spec;
  spec.gps_budget_bytes = 120.0;
  spec.bytes_per_sample = 12.0;
  FlashStore store(spec);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(store.AppendSample()) << "sample " << i;
  }
  EXPECT_FALSE(store.AppendSample());
  EXPECT_EQ(store.samples(), 10u);
  EXPECT_DOUBLE_EQ(store.utilization(), 1.0);
}

TEST(FlashStoreTest, OffloadReclaims) {
  PlatformSpec spec;
  spec.gps_budget_bytes = 24.0;
  FlashStore store(spec);
  EXPECT_TRUE(store.AppendSample());
  EXPECT_TRUE(store.AppendSample());
  EXPECT_FALSE(store.AppendSample());
  store.Offload();
  EXPECT_EQ(store.samples(), 0u);
  EXPECT_TRUE(store.AppendSample());
}

}  // namespace
}  // namespace bqs
