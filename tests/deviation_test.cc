// Exact deviation evaluation — the ground truth for every error-bound test.
#include "trajectory/deviation.h"

#include <gtest/gtest.h>

namespace bqs {
namespace {

Trajectory MakePath(std::initializer_list<Vec2> points) {
  Trajectory t;
  double time = 0.0;
  for (const Vec2& p : points) {
    t.push_back(TrackPoint{p, time, {}});
    time += 1.0;
  }
  return t;
}

TEST(DeviationTest, SegmentDeviationInteriorOnly) {
  const Trajectory t = MakePath({{0, 0}, {5, 3}, {10, 0}});
  EXPECT_DOUBLE_EQ(
      SegmentDeviation(t, 0, 2, DistanceMetric::kPointToLine), 3.0);
  // No interior points.
  EXPECT_DOUBLE_EQ(
      SegmentDeviation(t, 0, 1, DistanceMetric::kPointToLine), 0.0);
}

TEST(DeviationTest, SegmentDeviationClampsRange) {
  const Trajectory t = MakePath({{0, 0}, {5, 3}, {10, 0}});
  EXPECT_DOUBLE_EQ(
      SegmentDeviation(t, 0, 99, DistanceMetric::kPointToLine), 3.0);
}

TEST(DeviationTest, BufferDeviation) {
  const Trajectory t = MakePath({{1, 4}, {2, -7}, {3, 2}});
  EXPECT_DOUBLE_EQ(
      BufferDeviation(t, {0, 0}, {10, 0}, DistanceMetric::kPointToLine),
      7.0);
  EXPECT_DOUBLE_EQ(
      BufferDeviation({}, {0, 0}, {10, 0}, DistanceMetric::kPointToLine),
      0.0);
}

TEST(DeviationTest, EvaluateCompressionPerSegment) {
  const Trajectory t =
      MakePath({{0, 0}, {5, 2}, {10, 0}, {15, -6}, {20, 0}});
  CompressedTrajectory c;
  c.keys.push_back(KeyPoint{t[0], 0});
  c.keys.push_back(KeyPoint{t[2], 2});
  c.keys.push_back(KeyPoint{t[4], 4});
  const DeviationReport report =
      EvaluateCompression(t, c, DistanceMetric::kPointToLine);
  ASSERT_EQ(report.per_segment.size(), 2u);
  EXPECT_DOUBLE_EQ(report.per_segment[0], 2.0);
  EXPECT_DOUBLE_EQ(report.per_segment[1], 6.0);
  EXPECT_DOUBLE_EQ(report.max_deviation, 6.0);
  EXPECT_EQ(report.worst_segment, 1u);
  EXPECT_TRUE(report.BoundedBy(6.0));
  EXPECT_FALSE(report.BoundedBy(5.9));
}

TEST(DeviationTest, EvaluateEmptyAndSingle) {
  const Trajectory t = MakePath({{0, 0}, {1, 1}});
  CompressedTrajectory c;
  EXPECT_DOUBLE_EQ(
      EvaluateCompression(t, c, DistanceMetric::kPointToLine).max_deviation,
      0.0);
  c.keys.push_back(KeyPoint{t[0], 0});
  EXPECT_DOUBLE_EQ(
      EvaluateCompression(t, c, DistanceMetric::kPointToLine).max_deviation,
      0.0);
}

TEST(DeviationTest, SegmentMetricDiffersFromLineMetric) {
  // Point beyond the end deviates more under the segment metric.
  const Trajectory t = MakePath({{0, 0}, {15, 0}, {10, 0}});
  const double line = SegmentDeviation(t, 0, 2, DistanceMetric::kPointToLine);
  const double seg =
      SegmentDeviation(t, 0, 2, DistanceMetric::kPointToSegment);
  EXPECT_DOUBLE_EQ(line, 0.0);
  EXPECT_DOUBLE_EQ(seg, 5.0);
}

}  // namespace
}  // namespace bqs
