// Sweep runner: one verified row per algorithm x dataset x epsilon cell.
#include "eval/runner.h"

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(RunnerTest, RunCellProducesVerifiedRow) {
  const Dataset dataset = BuildSyntheticDataset(0.05);
  const SweepRow row = RunCell(AlgorithmId::kFbqs, dataset, 10.0);
  EXPECT_EQ(row.dataset, "synthetic");
  EXPECT_EQ(row.algorithm, "FBQS");
  EXPECT_DOUBLE_EQ(row.epsilon, 10.0);
  EXPECT_EQ(row.points_in, dataset.stream.size());
  EXPECT_GT(row.points_out, 1u);
  EXPECT_LT(row.compression_rate, 1.0);
  EXPECT_TRUE(row.error_bounded);
  EXPECT_GE(row.pruning_power, 0.0);  // populated for the BQS family
}

TEST(RunnerTest, SweepShape) {
  const std::vector<Dataset> datasets{BuildSyntheticDataset(0.02)};
  const std::vector<AlgorithmId> algorithms{
      AlgorithmId::kFbqs, AlgorithmId::kBdp, AlgorithmId::kDp};
  const std::vector<double> epsilons{5.0, 10.0};
  const auto rows = RunSweep(algorithms, datasets, epsilons);
  ASSERT_EQ(rows.size(), 6u);
  // Every error-bounded algorithm verifies.
  for (const SweepRow& row : rows) {
    EXPECT_TRUE(row.error_bounded)
        << row.algorithm << " at eps=" << row.epsilon;
  }
  // Non-BQS algorithms report no pruning power.
  for (const SweepRow& row : rows) {
    if (row.algorithm == "BDP" || row.algorithm == "DP") {
      EXPECT_LT(row.pruning_power, 0.0);
    }
  }
}

TEST(RunnerTest, AllAlgorithmIdsRun) {
  const Dataset dataset = BuildSyntheticDataset(0.02);
  for (AlgorithmId id :
       {AlgorithmId::kBqs, AlgorithmId::kFbqs, AlgorithmId::kBdp,
        AlgorithmId::kBgd, AlgorithmId::kDp, AlgorithmId::kDr,
        AlgorithmId::kSquishE}) {
    const SweepRow row = RunCell(id, dataset, 10.0, 32, /*verify=*/false);
    EXPECT_GT(row.points_out, 0u) << AlgorithmName(id);
    EXPECT_GE(row.runtime_ms, 0.0);
  }
}

TEST(RunnerTest, TighterEpsilonKeepsMorePoints) {
  const Dataset dataset = BuildSyntheticDataset(0.05);
  const SweepRow tight = RunCell(AlgorithmId::kFbqs, dataset, 2.0);
  const SweepRow loose = RunCell(AlgorithmId::kFbqs, dataset, 20.0);
  EXPECT_GT(tight.points_out, loose.points_out);
}

}  // namespace
}  // namespace bqs
