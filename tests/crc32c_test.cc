// CRC32C: known-answer vectors, incremental Extend equivalence, and the
// LevelDB-style masking the WAL stores its checksums under.
#include "common/crc32c.h"

#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace bqs {
namespace {

TEST(Crc32cTest, KnownAnswerVectors) {
  // The canonical CRC32C check value (RFC 3720 / every published table).
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(crc32c::Value("", 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  uint8_t zeros[32];
  std::memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8A9136AAu);
  // 32 0xFF bytes (iSCSI test vector).
  uint8_t ones[32];
  std::memset(ones, 0xff, sizeof(ones));
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62A8AB43u);
  // 0x00..0x1F ascending (iSCSI test vector).
  uint8_t ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(crc32c::Value(ascending, sizeof(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesOneShotAtEverySplit) {
  // Chunked computation must equal the one-shot value no matter where the
  // buffer is split — the WAL extends the length-prefix CRC with the
  // payload, so the boundary crosses the slice-by-8 alignment paths.
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = crc32c::Value(data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskUnmaskRoundTripsAndChangesValue) {
  const uint32_t samples[] = {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xa282ead8u};
  for (const uint32_t crc : samples) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    // The point of masking: a stored CRC never equals the raw CRC.
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "key-point wal record payload";
  const uint32_t good = crc32c::Value(data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
      EXPECT_NE(crc32c::Value(data.data(), data.size()), good)
          << "flip at byte " << byte << " bit " << bit;
      data[byte] = static_cast<char>(data[byte] ^ (1 << bit));
    }
  }
}

}  // namespace
}  // namespace bqs
