// Backoff: the deterministic retry schedule the compaction pipeline runs
// every I/O step under. The properties that matter: delays replay exactly
// from the seed, the exponential ladder caps, Run() retries exactly
// max_attempts times and reports the last failure, and the sleep hook
// sees every scheduled delay.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"

namespace bqs {
namespace {

TEST(BackoffTest, ZeroJitterLadderIsExactAndCapped) {
  BackoffPolicy policy;
  policy.base_delay_us = 100;
  policy.max_delay_us = 1000;
  policy.jitter = 0.0;
  Backoff backoff(policy, /*seed=*/1);
  EXPECT_EQ(backoff.DelayForAttempt(0), 100u);
  EXPECT_EQ(backoff.DelayForAttempt(1), 200u);
  EXPECT_EQ(backoff.DelayForAttempt(2), 400u);
  EXPECT_EQ(backoff.DelayForAttempt(3), 800u);
  EXPECT_EQ(backoff.DelayForAttempt(4), 1000u);   // capped
  EXPECT_EQ(backoff.DelayForAttempt(40), 1000u);  // stays capped, no UB
}

TEST(BackoffTest, JitteredDelaysReplayFromSeed) {
  BackoffPolicy policy;  // default jitter = 0.5
  std::vector<uint64_t> first, second;
  {
    Backoff backoff(policy, /*seed=*/42);
    for (uint32_t k = 0; k < 8; ++k) first.push_back(backoff.DelayForAttempt(k));
  }
  {
    Backoff backoff(policy, /*seed=*/42);
    for (uint32_t k = 0; k < 8; ++k) second.push_back(backoff.DelayForAttempt(k));
  }
  EXPECT_EQ(first, second);
  // Jitter stays inside [fixed, full delay].
  Backoff backoff(policy, /*seed=*/7);
  for (uint32_t k = 0; k < 12; ++k) {
    uint64_t full = policy.base_delay_us;
    for (uint32_t i = 0; i < k && full < policy.max_delay_us; ++i) full *= 2;
    if (full > policy.max_delay_us) full = policy.max_delay_us;
    const uint64_t d = backoff.DelayForAttempt(k);
    EXPECT_GE(d, full - full / 2);
    EXPECT_LE(d, full);
  }
}

TEST(BackoffTest, RunRetriesUntilSuccess) {
  BackoffPolicy policy;
  policy.max_attempts = 5;
  Backoff backoff(policy, /*seed=*/3);
  int calls = 0;
  const Status st = backoff.Run([&]() -> Status {
    ++calls;
    return calls < 3 ? Status::IoError("transient") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(backoff.attempts(), 3u);
}

TEST(BackoffTest, RunExhaustsAndReturnsLastFailure) {
  BackoffPolicy policy;
  policy.max_attempts = 4;
  Backoff backoff(policy, /*seed=*/3);
  int calls = 0;
  const Status st = backoff.Run([&]() -> Status {
    ++calls;
    return Status::IoError("failure " + std::to_string(calls));
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "failure 4");  // the LAST failure, not the first
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(backoff.attempts(), 4u);
}

TEST(BackoffTest, SleepHookSeesEveryScheduledDelay) {
  BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  policy.base_delay_us = 10;
  policy.max_delay_us = 1000;
  std::vector<uint64_t> slept;
  const BackoffSleepFn recorder = [](uint64_t micros, void* ctx) {
    static_cast<std::vector<uint64_t>*>(ctx)->push_back(micros);
  };
  Backoff backoff(policy, /*seed=*/1, recorder, &slept);
  (void)backoff.Run([]() -> Status { return Status::IoError("always"); });
  // Three sleeps between four attempts; none after the last.
  EXPECT_EQ(slept, (std::vector<uint64_t>{10, 20, 40}));
  EXPECT_EQ(backoff.slept_us(), 70u);
}

TEST(BackoffTest, SingleAttemptPolicyNeverSleeps) {
  BackoffPolicy policy;
  policy.max_attempts = 1;
  Backoff backoff(policy, /*seed=*/1);
  int calls = 0;
  const Status st = backoff.Run([&]() -> Status {
    ++calls;
    return Status::IoError("no retry");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(backoff.slept_us(), 0u);
}

}  // namespace
}  // namespace bqs
