// Buffered Douglas-Peucker: online semantics, buffer-full overhead, bound.
#include "baselines/buffered_dp.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

using testing_util::JaggedWalk;
using testing_util::NoisyLine;

TEST(BufferedDpTest, ErrorBounded) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (double eps : {3.0, 10.0}) {
      const Trajectory walk = JaggedWalk(seed, 2000);
      BufferedDpOptions options;
      options.epsilon = eps;
      options.buffer_size = 32;
      BufferedDp bdp(options);
      const CompressedTrajectory c = CompressAll(bdp, walk);
      const DeviationReport report =
          EvaluateCompression(walk, c, DistanceMetric::kPointToLine);
      EXPECT_LE(report.max_deviation, eps * (1.0 + 1e-9));
    }
  }
}

TEST(BufferedDpTest, StraightLinePaysFloorNOverM) {
  // The paper's analysis: a straight line costs ~floor(N/M)+1 points
  // because both buffer endpoints are kept at every flush.
  const std::size_t n = 320;
  const std::size_t m = 32;
  const Trajectory walk = NoisyLine(1, n, 0.0);
  BufferedDpOptions options;
  options.epsilon = 5.0;
  options.buffer_size = m;
  BufferedDp bdp(options);
  const CompressedTrajectory c = CompressAll(bdp, walk);
  // Every flush keeps its window end and carries it over, so windows
  // advance by m-1 points and the partial tail adds one more key:
  // ceil((n-1)/(m-1)) + 1 keys in total — the paper's floor(N/M)+1
  // analysis up to boundary handling.
  const std::size_t expected = (n - 1 + (m - 2)) / (m - 1) + 1;
  EXPECT_EQ(c.size(), expected);
  EXPECT_GT(c.size(), 2u) << "the windowing overhead must be visible";
}

TEST(BufferedDpTest, MatchesPlainDpWhenBufferCoversStream) {
  const Trajectory walk = JaggedWalk(9, 500);
  BufferedDpOptions options;
  options.epsilon = 8.0;
  options.buffer_size = 4096;  // larger than the stream
  BufferedDp bdp(options);
  const CompressedTrajectory via_bdp = CompressAll(bdp, walk);
  DouglasPeucker dp(DpOptions{8.0, DistanceMetric::kPointToLine});
  const CompressedTrajectory via_dp = dp.Compress(walk);
  ASSERT_EQ(via_bdp.size(), via_dp.size());
  for (std::size_t i = 0; i < via_dp.size(); ++i) {
    EXPECT_EQ(via_bdp.keys[i].index, via_dp.keys[i].index);
  }
}

TEST(BufferedDpTest, EmitsFirstPointImmediately) {
  BufferedDp bdp(BufferedDpOptions{});
  std::vector<KeyPoint> keys;
  bdp.Push(TrackPoint{{1, 1}, 0, {}}, &keys);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].index, 0u);
}

TEST(BufferedDpTest, FinishFlushesPartialBuffer) {
  BufferedDp bdp(BufferedDpOptions{.epsilon = 5.0, .buffer_size = 32});
  std::vector<KeyPoint> keys;
  for (int i = 0; i < 10; ++i) {
    bdp.Push(TrackPoint{{i * 10.0, 0.0}, static_cast<double>(i), {}}, &keys);
  }
  bdp.Finish(&keys);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys.back().index, 9u);
}

TEST(BufferedDpTest, ResetIsClean) {
  const Trajectory walk = JaggedWalk(10, 300);
  BufferedDp bdp(BufferedDpOptions{.epsilon = 5.0, .buffer_size = 16});
  const auto first = CompressAll(bdp, walk);
  const auto second = CompressAll(bdp, walk);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.keys[i].index, second.keys[i].index);
  }
}

TEST(BufferedDpTest, SmallerBuffersNeverHelpCompression) {
  const Trajectory walk = JaggedWalk(11, 2000);
  std::size_t with_small;
  std::size_t with_large;
  {
    BufferedDp bdp(BufferedDpOptions{.epsilon = 10.0, .buffer_size = 16});
    with_small = CompressAll(bdp, walk).size();
  }
  {
    BufferedDp bdp(BufferedDpOptions{.epsilon = 10.0, .buffer_size = 256});
    with_large = CompressAll(bdp, walk).size();
  }
  EXPECT_GE(with_small, with_large);
}

}  // namespace
}  // namespace bqs
