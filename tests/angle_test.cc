// Angle normalization and the quadrant/octant conventions the BQS rests on.
#include "geometry/angle.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"

namespace bqs {
namespace {

TEST(AngleTest, NormalizeAngleToHalfOpenPi) {
  EXPECT_NEAR(NormalizeAngle(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-kPi), kPi, 1e-12);  // (-pi, pi]: -pi -> pi
  EXPECT_NEAR(NormalizeAngle(kPi / 4.0 + kTwoPi), kPi / 4.0, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-kPi / 4.0 - kTwoPi), -kPi / 4.0, 1e-12);
}

TEST(AngleTest, NormalizeAngle2PiRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double a = NormalizeAngle2Pi(rng.Uniform(-50.0, 50.0));
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, kTwoPi);
  }
  EXPECT_DOUBLE_EQ(NormalizeAngle2Pi(0.0), 0.0);
  EXPECT_NEAR(NormalizeAngle2Pi(-kHalfPi), 1.5 * kPi, 1e-12);
}

TEST(AngleTest, NormalizeLineAngleFoldsPi) {
  EXPECT_NEAR(NormalizeLineAngle(kPi + 0.3), 0.3, 1e-12);
  EXPECT_NEAR(NormalizeLineAngle(-0.3), kPi - 0.3, 1e-12);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double a = NormalizeLineAngle(rng.Uniform(-20.0, 20.0));
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, kPi);
  }
}

TEST(AngleTest, QuadrantOfMatchesSigns) {
  EXPECT_EQ(QuadrantOf({1.0, 1.0}), 0);
  EXPECT_EQ(QuadrantOf({-1.0, 1.0}), 1);
  EXPECT_EQ(QuadrantOf({-1.0, -1.0}), 2);
  EXPECT_EQ(QuadrantOf({1.0, -1.0}), 3);
}

TEST(AngleTest, QuadrantOfAxesIsDeterministic) {
  EXPECT_EQ(QuadrantOf({1.0, 0.0}), 0);   // +x -> q0
  EXPECT_EQ(QuadrantOf({0.0, 1.0}), 1);   // +y -> q1
  EXPECT_EQ(QuadrantOf({-1.0, 0.0}), 2);  // -x -> q2
  EXPECT_EQ(QuadrantOf({0.0, -1.0}), 3);  // -y -> q3
}

TEST(AngleTest, QuadrantAnglesCoverCircle) {
  double expected_start = 0.0;
  for (int q = 0; q < 4; ++q) {
    const QuadrantRange r = QuadrantAngles(q);
    EXPECT_DOUBLE_EQ(r.start, expected_start);
    EXPECT_DOUBLE_EQ(r.end, expected_start + kHalfPi);
    expected_start = r.end;
  }
}

TEST(AngleTest, QuadrantOfAgreesWithQuadrantAngles) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double theta = rng.Uniform(0.0, kTwoPi * 0.999999);
    const Vec2 v{std::cos(theta), std::sin(theta)};
    const int q = QuadrantOf(v);
    const QuadrantRange r = QuadrantAngles(q);
    const double a = NormalizeAngle2Pi(v.Angle());
    EXPECT_GE(a, r.start - 1e-12);
    EXPECT_LT(a, r.end + 1e-12);
  }
}

TEST(AngleTest, LineInExactlyTwoOppositeQuadrants) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double angle = rng.Uniform(-10.0, 10.0);
    int count = 0;
    for (int q = 0; q < 4; ++q) {
      if (LineInQuadrant(angle, q)) ++count;
    }
    EXPECT_EQ(count, 2);
    EXPECT_EQ(LineInQuadrant(angle, 0), LineInQuadrant(angle, 2));
    EXPECT_EQ(LineInQuadrant(angle, 1), LineInQuadrant(angle, 3));
  }
}

TEST(AngleTest, RayInExactlyOneQuadrant) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double angle = rng.Uniform(-10.0, 10.0);
    int count = 0;
    for (int q = 0; q < 4; ++q) {
      if (RayInQuadrant(angle, q)) ++count;
    }
    EXPECT_EQ(count, 1);
  }
}

TEST(AngleTest, QuadrantOfMatchesAtan2OnAxesAndSignedZeros) {
  // The documented boundary semantics: axis-aligned and signed-zero
  // inputs classify identically under the sign tests and the reference
  // atan2+fmod formula, at any magnitude.
  for (const double r : {1.0, 0.25, 7.5, 1e-6, 1e9}) {
    const Vec2 cases[] = {{r, 0.0},  {r, -0.0},  {0.0, r},  {-0.0, r},
                          {-r, 0.0}, {-r, -0.0}, {0.0, -r}, {-0.0, -r}};
    const int expected[] = {0, 0, 1, 1, 2, 2, 3, 3};
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(QuadrantOf(cases[i]), expected[i]) << "r=" << r << " i=" << i;
      EXPECT_EQ(QuadrantOfAtan2(cases[i]), expected[i])
          << "r=" << r << " i=" << i;
    }
  }
}

TEST(AngleTest, QuadrantOfMatchesAtan2PointForPointFuzz) {
  // Point-for-point equivalence of the sign-test classifier with the
  // transcendental reference across magnitudes and directions. The fuzz
  // keeps min(|x|,|y|)/max(|x|,|y|) far above ~5e-16: inside that sub-ulp
  // sliver the atan2 formula itself misclassifies (fmod-normalizing an
  // angle within half an ulp of 2*pi absorbs a q3 direction into q0), and
  // the sign tests are the documented ground truth (see QuadrantOf).
  Rng rng(17);
  for (int i = 0; i < 200000; ++i) {
    const double sx = rng.Uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0;
    const double sy = rng.Uniform(0.0, 1.0) < 0.5 ? -1.0 : 1.0;
    const double ex = rng.Uniform(-6.0, 6.0);
    const double ey = rng.Uniform(-6.0, 6.0);
    const Vec2 v{sx * rng.Uniform(0.1, 1.0) * std::pow(10.0, ex),
                 sy * rng.Uniform(0.1, 1.0) * std::pow(10.0, ey)};
    ASSERT_EQ(QuadrantOf(v), QuadrantOfAtan2(v))
        << "(" << v.x << ", " << v.y << ")";
  }
}

TEST(AngleTest, QuadrantOfExactPiHalfMultiples) {
  // True exact multiples of pi/2 are the axis vectors (a zero coordinate);
  // both classifiers agree there. Note that cos/sin of k*kHalfPi do NOT
  // produce exact multiples: cos(kHalfPi) == 6.12e-17, a sub-ulp sliver
  // vector whose *true* angle is within half an ulp of pi/2 — the regime
  // where atan2 rounds onto the boundary. The sign tests classify such a
  // sliver by its actual coordinate signs (q0 here).
  EXPECT_EQ(QuadrantOf({std::cos(0.0), std::sin(0.0)}), 0);
  EXPECT_EQ(QuadrantOf({6.123233995736766e-17, 1.0}), 0);  // "cos(pi/2)"
  EXPECT_EQ(QuadrantOf({0.0, 1.0}), 1);                    // exact pi/2
  EXPECT_EQ(QuadrantOf({-1.0, 1.2246467991473532e-16}), 1);  // "pi"
  EXPECT_EQ(QuadrantOf({-1.0, 0.0}), 2);                     // exact pi
  EXPECT_EQ(QuadrantOf({0.0, -1.0}), 3);  // exact 3*pi/2
}

TEST(AngleTest, ThetaQuadrantIsTheAtan2Tail) {
  Rng rng(18);
  for (int i = 0; i < 5000; ++i) {
    const double theta = rng.Uniform(0.0, kTwoPi * 0.9999999);
    const Vec2 v{std::cos(theta), std::sin(theta)};
    EXPECT_EQ(ThetaQuadrant(NormalizeAngle2Pi(v.Angle())), QuadrantOfAtan2(v));
  }
}

TEST(AngleTest, OctantOfUsesSignBits) {
  EXPECT_EQ(OctantOf({1.0, 1.0, 1.0}), 0);
  EXPECT_EQ(OctantOf({-1.0, 1.0, 1.0}), 1);
  EXPECT_EQ(OctantOf({1.0, -1.0, 1.0}), 2);
  EXPECT_EQ(OctantOf({-1.0, -1.0, 1.0}), 3);
  EXPECT_EQ(OctantOf({1.0, 1.0, -1.0}), 4);
  EXPECT_EQ(OctantOf({-1.0, -1.0, -1.0}), 7);
}

TEST(AngleTest, CcwDeltaWraps) {
  EXPECT_NEAR(CcwDelta(0.1, 0.4), 0.3, 1e-12);
  EXPECT_NEAR(CcwDelta(0.4, 0.1), kTwoPi - 0.3, 1e-12);
}

}  // namespace
}  // namespace bqs
