// Angle normalization and the quadrant/octant conventions the BQS rests on.
#include "geometry/angle.h"

#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"

namespace bqs {
namespace {

TEST(AngleTest, NormalizeAngleToHalfOpenPi) {
  EXPECT_NEAR(NormalizeAngle(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-kPi), kPi, 1e-12);  // (-pi, pi]: -pi -> pi
  EXPECT_NEAR(NormalizeAngle(kPi / 4.0 + kTwoPi), kPi / 4.0, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-kPi / 4.0 - kTwoPi), -kPi / 4.0, 1e-12);
}

TEST(AngleTest, NormalizeAngle2PiRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double a = NormalizeAngle2Pi(rng.Uniform(-50.0, 50.0));
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, kTwoPi);
  }
  EXPECT_DOUBLE_EQ(NormalizeAngle2Pi(0.0), 0.0);
  EXPECT_NEAR(NormalizeAngle2Pi(-kHalfPi), 1.5 * kPi, 1e-12);
}

TEST(AngleTest, NormalizeLineAngleFoldsPi) {
  EXPECT_NEAR(NormalizeLineAngle(kPi + 0.3), 0.3, 1e-12);
  EXPECT_NEAR(NormalizeLineAngle(-0.3), kPi - 0.3, 1e-12);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double a = NormalizeLineAngle(rng.Uniform(-20.0, 20.0));
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, kPi);
  }
}

TEST(AngleTest, QuadrantOfMatchesSigns) {
  EXPECT_EQ(QuadrantOf({1.0, 1.0}), 0);
  EXPECT_EQ(QuadrantOf({-1.0, 1.0}), 1);
  EXPECT_EQ(QuadrantOf({-1.0, -1.0}), 2);
  EXPECT_EQ(QuadrantOf({1.0, -1.0}), 3);
}

TEST(AngleTest, QuadrantOfAxesIsDeterministic) {
  EXPECT_EQ(QuadrantOf({1.0, 0.0}), 0);   // +x -> q0
  EXPECT_EQ(QuadrantOf({0.0, 1.0}), 1);   // +y -> q1
  EXPECT_EQ(QuadrantOf({-1.0, 0.0}), 2);  // -x -> q2
  EXPECT_EQ(QuadrantOf({0.0, -1.0}), 3);  // -y -> q3
}

TEST(AngleTest, QuadrantAnglesCoverCircle) {
  double expected_start = 0.0;
  for (int q = 0; q < 4; ++q) {
    const QuadrantRange r = QuadrantAngles(q);
    EXPECT_DOUBLE_EQ(r.start, expected_start);
    EXPECT_DOUBLE_EQ(r.end, expected_start + kHalfPi);
    expected_start = r.end;
  }
}

TEST(AngleTest, QuadrantOfAgreesWithQuadrantAngles) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double theta = rng.Uniform(0.0, kTwoPi * 0.999999);
    const Vec2 v{std::cos(theta), std::sin(theta)};
    const int q = QuadrantOf(v);
    const QuadrantRange r = QuadrantAngles(q);
    const double a = NormalizeAngle2Pi(v.Angle());
    EXPECT_GE(a, r.start - 1e-12);
    EXPECT_LT(a, r.end + 1e-12);
  }
}

TEST(AngleTest, LineInExactlyTwoOppositeQuadrants) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const double angle = rng.Uniform(-10.0, 10.0);
    int count = 0;
    for (int q = 0; q < 4; ++q) {
      if (LineInQuadrant(angle, q)) ++count;
    }
    EXPECT_EQ(count, 2);
    EXPECT_EQ(LineInQuadrant(angle, 0), LineInQuadrant(angle, 2));
    EXPECT_EQ(LineInQuadrant(angle, 1), LineInQuadrant(angle, 3));
  }
}

TEST(AngleTest, RayInExactlyOneQuadrant) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double angle = rng.Uniform(-10.0, 10.0);
    int count = 0;
    for (int q = 0; q < 4; ++q) {
      if (RayInQuadrant(angle, q)) ++count;
    }
    EXPECT_EQ(count, 1);
  }
}

TEST(AngleTest, OctantOfUsesSignBits) {
  EXPECT_EQ(OctantOf({1.0, 1.0, 1.0}), 0);
  EXPECT_EQ(OctantOf({-1.0, 1.0, 1.0}), 1);
  EXPECT_EQ(OctantOf({1.0, -1.0, 1.0}), 2);
  EXPECT_EQ(OctantOf({-1.0, -1.0, 1.0}), 3);
  EXPECT_EQ(OctantOf({1.0, 1.0, -1.0}), 4);
  EXPECT_EQ(OctantOf({-1.0, -1.0, -1.0}), 7);
}

TEST(AngleTest, CcwDeltaWraps) {
  EXPECT_NEAR(CcwDelta(0.1, 0.4), 0.3, 1e-12);
  EXPECT_NEAR(CcwDelta(0.4, 0.1), kTwoPi - 0.3, 1e-12);
}

}  // namespace
}  // namespace bqs
