// FleetEngine: the sharded multi-device session manager. The headline
// invariant — for any shard count, per-device output is byte-identical to
// compressing that device's stream alone through CompressAll — plus session
// lifecycle (finish, recycling, budget eviction, idle timeout), stats
// aggregation, and ingest-chunking independence.
#include "service/fleet_engine.h"

#include <map>
#include <mutex>
#include <vector>

#include "gtest/gtest.h"
#include "simulation/datasets.h"
#include "test_util.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

/// Collects per-device output. OnKeyPoint may fire concurrently for
/// different devices, so every mutation locks.
class CollectingSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[device].push_back(key);
  }
  void OnSessionEnd(DeviceId device, SessionEndReason reason) override {
    std::lock_guard<std::mutex> lock(mu_);
    ends_[device].push_back(reason);
  }

  std::map<DeviceId, std::vector<KeyPoint>> keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }
  std::map<DeviceId, std::vector<SessionEndReason>> ends() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ends_;
  }

 private:
  mutable std::mutex mu_;
  std::map<DeviceId, std::vector<KeyPoint>> keys_;
  std::map<DeviceId, std::vector<SessionEndReason>> ends_;
};

AlgorithmConfig ConfigFor(AlgorithmId id) {
  AlgorithmConfig config;
  config.id = id;
  config.epsilon = 8.0;
  return config;
}

/// Feeds `feed` in chunks of `chunk` records and finalizes everything.
void RunFleet(FleetEngine& engine, const std::vector<FleetRecord>& feed,
              std::size_t chunk) {
  for (std::size_t i = 0; i < feed.size(); i += chunk) {
    const std::size_t n = std::min(chunk, feed.size() - i);
    engine.IngestBatch(std::span<const FleetRecord>(feed.data() + i, n));
  }
  engine.FinishAll();
}

/// Sequential reference: each device's stream alone through CompressAll.
std::map<DeviceId, std::vector<KeyPoint>> SequentialReference(
    const FleetDataset& fleet, const AlgorithmConfig& config) {
  std::map<DeviceId, std::vector<KeyPoint>> out;
  for (const auto& [device, stream] : fleet.devices) {
    auto compressor = MakeStreamCompressor(config);
    out[device] = CompressAll(*compressor, stream).keys;
  }
  return out;
}

TEST(FleetEngineTest, PerDeviceOutputMatchesSequentialAcrossShardCounts) {
  const FleetDataset fleet = BuildFleetDataset(12, 0.05, 7001);
  const AlgorithmId algorithms[] = {AlgorithmId::kBqs, AlgorithmId::kFbqs,
                                    AlgorithmId::kBdp, AlgorithmId::kBgd,
                                    AlgorithmId::kDr};
  for (const AlgorithmId id : algorithms) {
    const AlgorithmConfig config = ConfigFor(id);
    const auto reference = SequentialReference(fleet, config);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{8}}) {
      CollectingSink sink;
      FleetEngineOptions options;
      options.algorithm = config;
      options.num_shards = shards;
      {
        FleetEngine engine(options, sink);
        RunFleet(engine, fleet.feed, 512);
      }
      EXPECT_EQ(sink.keys(), reference)
          << AlgorithmName(id) << " diverged at " << shards << " shards";
    }
  }
}

TEST(FleetEngineTest, OutputIndependentOfIngestChunking) {
  const FleetDataset fleet = BuildFleetDataset(6, 0.04, 7002);
  const AlgorithmConfig config = ConfigFor(AlgorithmId::kBqs);
  std::map<DeviceId, std::vector<KeyPoint>> first;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{37},
                                  std::size_t{4096}}) {
    CollectingSink sink;
    FleetEngineOptions options;
    options.algorithm = config;
    options.num_shards = 3;
    {
      FleetEngine engine(options, sink);
      RunFleet(engine, fleet.feed, chunk);
    }
    if (first.empty()) {
      first = sink.keys();
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(sink.keys(), first) << "chunk size " << chunk;
    }
  }
}

TEST(FleetEngineTest, FinishDeviceClosesOnlyThatSession) {
  const Trajectory stream = testing_util::SmoothWalk(7003, 400);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 2;
  FleetEngine engine(options, sink);
  for (const TrackPoint& pt : stream) {
    engine.Ingest(1, pt);
    engine.Ingest(2, pt);
  }
  engine.FinishDevice(1);
  engine.Flush();
  {
    const auto ends = sink.ends();
    ASSERT_EQ(ends.count(1), 1u);
    EXPECT_EQ(ends.at(1),
              std::vector<SessionEndReason>{SessionEndReason::kFinished});
    EXPECT_EQ(ends.count(2), 0u);
  }
  // Finishing an already-closed device is a harmless no-op.
  engine.FinishDevice(1);
  engine.FinishAll();
  const auto ends = sink.ends();
  EXPECT_EQ(ends.at(1).size(), 1u);
  EXPECT_EQ(ends.at(2),
            std::vector<SessionEndReason>{SessionEndReason::kFinished});

  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.sessions_finished, 2u);
  EXPECT_EQ(stats.live_sessions, 0u);
  EXPECT_EQ(stats.records_ingested, 2 * stream.size());
}

TEST(FleetEngineTest, SessionRecyclingReusesPooledCompressors) {
  const Trajectory stream = testing_util::JaggedWalk(7004, 300);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 1;
  FleetEngine engine(options, sink);

  // Three generations of the same device: each finish pools the
  // compressor, each reopen must recycle it via Reset().
  std::vector<KeyPoint> expected;
  {
    auto reference = MakeStreamCompressor(options.algorithm);
    expected = CompressAll(*reference, stream).keys;
  }
  for (int generation = 0; generation < 3; ++generation) {
    for (const TrackPoint& pt : stream) engine.Ingest(42, pt);
    engine.FinishDevice(42);
  }
  engine.FinishAll();

  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(stats.sessions_recycled, 2u);
  EXPECT_EQ(stats.sessions_finished, 3u);
  // The pooled compressor's retained heap capacity is accounted, not free.
  EXPECT_GT(stats.pooled_bytes, 0u);
  EXPECT_EQ(stats.state_bytes, 0u);

  // Every generation's output is byte-identical to a fresh compressor's.
  const auto keys = sink.keys().at(42);
  ASSERT_EQ(keys.size(), 3 * expected.size());
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(keys[g * expected.size() + i], expected[i])
          << "generation " << g << " key " << i;
    }
  }
}

TEST(FleetEngineTest, MemoryBudgetEvictsLeastRecentlyActiveSessions) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 1;
  // Room for roughly two base charges: a third concurrent session must
  // evict the least recently active one.
  options.memory_budget_bytes = 2 * FleetEngine::kSessionBaseBytes + 64;
  FleetEngine engine(options, sink);

  const Trajectory stream = testing_util::SmoothWalk(7005, 120);
  for (DeviceId device = 1; device <= 4; ++device) {
    for (const TrackPoint& pt : stream) engine.Ingest(device, pt);
  }
  engine.Flush();
  const FleetStats mid = engine.Stats();
  EXPECT_GT(mid.sessions_evicted, 0u);
  // The budget bounds live state plus pooled capacity together; evicted
  // compressors are destroyed, so nothing hides in the pool either.
  EXPECT_LE(mid.state_bytes + mid.pooled_bytes,
            std::max(options.memory_budget_bytes,
                     FleetEngine::kSessionBaseBytes + 64));
  engine.FinishAll();
  // Finish-path closures pool compressors, but never past the budget: the
  // accounted footprint stays bounded even after non-eviction closes.
  const FleetStats end = engine.Stats();
  EXPECT_LE(end.state_bytes + end.pooled_bytes, options.memory_budget_bytes);

  bool saw_evicted = false;
  for (const auto& [device, reasons] : sink.ends()) {
    (void)device;
    for (const SessionEndReason reason : reasons) {
      saw_evicted = saw_evicted || reason == SessionEndReason::kEvicted;
    }
  }
  EXPECT_TRUE(saw_evicted);
}

TEST(FleetEngineTest, IdleTimeoutFinalizesStaleSessions) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 1;
  options.idle_timeout_seconds = 50.0;
  FleetEngine engine(options, sink);

  // Device 1 sends early and goes quiet; device 2 keeps transmitting past
  // the timeout horizon.
  for (int i = 0; i < 10; ++i) {
    engine.Ingest(1, TrackPoint{{static_cast<double>(i), 0.0},
                                static_cast<double>(i)});
  }
  for (int i = 0; i < 200; ++i) {
    engine.Ingest(2, TrackPoint{{static_cast<double>(i), 5.0},
                                static_cast<double>(i)});
  }
  engine.Flush();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.sessions_idled, 1u);
  EXPECT_EQ(stats.live_sessions, 1u);
  const auto ends = sink.ends();
  ASSERT_EQ(ends.count(1), 1u);
  EXPECT_EQ(ends.at(1),
            std::vector<SessionEndReason>{SessionEndReason::kIdle});
  engine.FinishAll();
}

TEST(FleetEngineTest, AggregatesDecisionStatsAcrossSessions) {
  const FleetDataset fleet = BuildFleetDataset(5, 0.04, 7006);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 4;
  FleetEngine engine(options, sink);
  engine.IngestBatch(fleet.feed);

  // Live sessions' stats are part of the aggregate even before FinishAll.
  const FleetStats mid = engine.Stats();
  EXPECT_EQ(mid.decisions.points, fleet.feed.size());
  EXPECT_EQ(mid.live_sessions, fleet.devices.size());
  EXPECT_GT(mid.state_bytes,
            fleet.devices.size() * FleetEngine::kSessionBaseBytes - 1);
  EXPECT_GE(mid.peak_state_bytes, mid.state_bytes);

  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.decisions.points, fleet.feed.size());
  EXPECT_EQ(stats.records_ingested, fleet.feed.size());
  EXPECT_EQ(stats.key_points_emitted,
            [&] {
              std::size_t n = 0;
              for (const auto& [device, keys] : sink.keys()) n += keys.size();
              return n;
            }());
  EXPECT_EQ(stats.live_sessions, 0u);
  EXPECT_EQ(stats.state_bytes, 0u);
}

TEST(FleetEngineTest, OfflineAlgorithmRecordsAreDroppedAndCounted) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kDp);  // offline: no sessions
  FleetEngine engine(options, sink);
  const Trajectory stream = testing_util::SmoothWalk(7007, 50);
  for (const TrackPoint& pt : stream) engine.Ingest(9, pt);
  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.records_ingested, 0u);
  EXPECT_EQ(stats.records_dropped, stream.size());
  EXPECT_TRUE(sink.keys().empty());
}

TEST(FleetEngineTest, EmptyBatchAndDestructionWithoutFinishAreSafe) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 3;
  {
    FleetEngine engine(options, sink);
    engine.IngestBatch({});
    engine.Flush();
    const Trajectory stream = testing_util::SmoothWalk(7008, 100);
    for (const TrackPoint& pt : stream) engine.Ingest(1, pt);
    // Destructor drains the queue but does not finalize sessions.
  }
  for (const auto& [device, reasons] : sink.ends()) {
    (void)device;
    EXPECT_TRUE(reasons.empty());
  }
}

TEST(FleetEngineTest, ShardRoutingIsStableAndInRange) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 8;
  FleetEngine engine(options, sink);
  ASSERT_EQ(engine.num_shards(), 8u);
  std::vector<std::size_t> hits(engine.num_shards(), 0);
  for (DeviceId device = 0; device < 1000; ++device) {
    const std::size_t shard = engine.ShardOf(device);
    ASSERT_LT(shard, engine.num_shards());
    EXPECT_EQ(shard, engine.ShardOf(device));  // stable
    ++hits[shard];
  }
  // splitmix64 routing should spread sequential ids across all shards.
  for (const std::size_t h : hits) EXPECT_GT(h, 50u);
}

}  // namespace
}  // namespace bqs
