// FleetEngine: the sharded multi-device session manager. The headline
// invariant — for any shard count, per-device output is byte-identical to
// compressing that device's stream alone through CompressAll — plus session
// lifecycle (finish, recycling, budget eviction, idle timeout), stats
// aggregation, and ingest-chunking independence.
#include "service/fleet_engine.h"

#include <map>
#include <mutex>
#include <vector>

#include "gtest/gtest.h"
#include "simulation/datasets.h"
#include "test_util.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

/// Collects per-device output. OnKeyPoint may fire concurrently for
/// different devices, so every mutation locks.
class CollectingSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[device].push_back(key);
  }
  void OnSessionEnd(DeviceId device, SessionEndReason reason) override {
    std::lock_guard<std::mutex> lock(mu_);
    ends_[device].push_back(reason);
  }

  std::map<DeviceId, std::vector<KeyPoint>> keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }
  std::map<DeviceId, std::vector<SessionEndReason>> ends() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ends_;
  }

 private:
  mutable std::mutex mu_;
  std::map<DeviceId, std::vector<KeyPoint>> keys_;
  std::map<DeviceId, std::vector<SessionEndReason>> ends_;
};

AlgorithmConfig ConfigFor(AlgorithmId id) {
  AlgorithmConfig config;
  config.id = id;
  config.epsilon = 8.0;
  return config;
}

/// Feeds `feed` in chunks of `chunk` records and finalizes everything.
void RunFleet(FleetEngine& engine, const std::vector<FleetRecord>& feed,
              std::size_t chunk) {
  for (std::size_t i = 0; i < feed.size(); i += chunk) {
    const std::size_t n = std::min(chunk, feed.size() - i);
    engine.IngestBatch(std::span<const FleetRecord>(feed.data() + i, n));
  }
  engine.FinishAll();
}

/// Sequential reference: each device's stream alone through CompressAll.
std::map<DeviceId, std::vector<KeyPoint>> SequentialReference(
    const FleetDataset& fleet, const AlgorithmConfig& config) {
  std::map<DeviceId, std::vector<KeyPoint>> out;
  for (const auto& [device, stream] : fleet.devices) {
    auto compressor = MakeStreamCompressor(config);
    out[device] = CompressAll(*compressor, stream).keys;
  }
  return out;
}

TEST(FleetEngineTest, PerDeviceOutputMatchesSequentialAcrossShardCounts) {
  // shards=0 is inline mode: same router, no threads — held to the same
  // byte-identity invariant as every threaded shard count.
  const FleetDataset fleet = BuildFleetDataset(12, 0.05, 7001);
  const AlgorithmId algorithms[] = {AlgorithmId::kBqs, AlgorithmId::kFbqs,
                                    AlgorithmId::kBdp, AlgorithmId::kBgd,
                                    AlgorithmId::kDr};
  for (const AlgorithmId id : algorithms) {
    const AlgorithmConfig config = ConfigFor(id);
    const auto reference = SequentialReference(fleet, config);
    for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                     std::size_t{2}, std::size_t{8}}) {
      CollectingSink sink;
      FleetEngineOptions options;
      options.algorithm = config;
      options.num_shards = shards;
      {
        FleetEngine engine(options, sink);
        RunFleet(engine, fleet.feed, 512);
      }
      EXPECT_EQ(sink.keys(), reference)
          << AlgorithmName(id) << " diverged at " << shards << " shards";
    }
  }
}

TEST(FleetEngineTest, OutputIndependentOfIngestChunking) {
  const FleetDataset fleet = BuildFleetDataset(6, 0.04, 7002);
  const AlgorithmConfig config = ConfigFor(AlgorithmId::kBqs);
  std::map<DeviceId, std::vector<KeyPoint>> first;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{37},
                                  std::size_t{4096}}) {
    CollectingSink sink;
    FleetEngineOptions options;
    options.algorithm = config;
    options.num_shards = 3;
    {
      FleetEngine engine(options, sink);
      RunFleet(engine, fleet.feed, chunk);
    }
    if (first.empty()) {
      first = sink.keys();
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(sink.keys(), first) << "chunk size " << chunk;
    }
  }
}

TEST(FleetEngineTest, FinishDeviceClosesOnlyThatSession) {
  const Trajectory stream = testing_util::SmoothWalk(7003, 400);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 2;
  FleetEngine engine(options, sink);
  for (const TrackPoint& pt : stream) {
    engine.Ingest(1, pt);
    engine.Ingest(2, pt);
  }
  engine.FinishDevice(1);
  engine.Flush();
  {
    const auto ends = sink.ends();
    ASSERT_EQ(ends.count(1), 1u);
    EXPECT_EQ(ends.at(1),
              std::vector<SessionEndReason>{SessionEndReason::kFinished});
    EXPECT_EQ(ends.count(2), 0u);
  }
  // Finishing an already-closed device is a harmless no-op.
  engine.FinishDevice(1);
  engine.FinishAll();
  const auto ends = sink.ends();
  EXPECT_EQ(ends.at(1).size(), 1u);
  EXPECT_EQ(ends.at(2),
            std::vector<SessionEndReason>{SessionEndReason::kFinished});

  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.sessions_finished, 2u);
  EXPECT_EQ(stats.live_sessions, 0u);
  EXPECT_EQ(stats.records_ingested, 2 * stream.size());
}

TEST(FleetEngineTest, SessionRecyclingReusesPooledCompressors) {
  const Trajectory stream = testing_util::JaggedWalk(7004, 300);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 1;
  FleetEngine engine(options, sink);

  // Three generations of the same device: each finish pools the
  // compressor, each reopen must recycle it via Reset().
  std::vector<KeyPoint> expected;
  {
    auto reference = MakeStreamCompressor(options.algorithm);
    expected = CompressAll(*reference, stream).keys;
  }
  for (int generation = 0; generation < 3; ++generation) {
    for (const TrackPoint& pt : stream) engine.Ingest(42, pt);
    engine.FinishDevice(42);
  }
  engine.FinishAll();

  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.sessions_opened, 3u);
  EXPECT_EQ(stats.sessions_recycled, 2u);
  EXPECT_EQ(stats.sessions_finished, 3u);
  // The pooled compressor's retained heap capacity is accounted, not free.
  EXPECT_GT(stats.pooled_bytes, 0u);
  EXPECT_EQ(stats.state_bytes, 0u);

  // Every generation's output is byte-identical to a fresh compressor's.
  const auto keys = sink.keys().at(42);
  ASSERT_EQ(keys.size(), 3 * expected.size());
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(keys[g * expected.size() + i], expected[i])
          << "generation " << g << " key " << i;
    }
  }
}

TEST(FleetEngineTest, MemoryBudgetEvictsLeastRecentlyActiveSessions) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 1;
  // Room for roughly two base charges: a third concurrent session must
  // evict the least recently active one.
  options.memory_budget_bytes = 2 * FleetEngine::kSessionBaseBytes + 64;
  FleetEngine engine(options, sink);

  const Trajectory stream = testing_util::SmoothWalk(7005, 120);
  for (DeviceId device = 1; device <= 4; ++device) {
    for (const TrackPoint& pt : stream) engine.Ingest(device, pt);
  }
  engine.Flush();
  const FleetStats mid = engine.Stats();
  EXPECT_GT(mid.sessions_evicted, 0u);
  // The budget bounds live state plus pooled capacity together; evicted
  // compressors are destroyed, so nothing hides in the pool either.
  EXPECT_LE(mid.state_bytes + mid.pooled_bytes,
            std::max(options.memory_budget_bytes,
                     FleetEngine::kSessionBaseBytes + 64));
  engine.FinishAll();
  // Finish-path closures pool compressors, but never past the budget: the
  // accounted footprint stays bounded even after non-eviction closes.
  const FleetStats end = engine.Stats();
  EXPECT_LE(end.state_bytes + end.pooled_bytes, options.memory_budget_bytes);

  bool saw_evicted = false;
  for (const auto& [device, reasons] : sink.ends()) {
    (void)device;
    for (const SessionEndReason reason : reasons) {
      saw_evicted = saw_evicted || reason == SessionEndReason::kEvicted;
    }
  }
  EXPECT_TRUE(saw_evicted);
}

TEST(FleetEngineTest, IdleTimeoutFinalizesStaleSessions) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 1;
  options.idle_timeout_seconds = 50.0;
  FleetEngine engine(options, sink);

  // Device 1 sends early and goes quiet; device 2 keeps transmitting past
  // the timeout horizon.
  for (int i = 0; i < 10; ++i) {
    engine.Ingest(1, TrackPoint{{static_cast<double>(i), 0.0},
                                static_cast<double>(i)});
  }
  for (int i = 0; i < 200; ++i) {
    engine.Ingest(2, TrackPoint{{static_cast<double>(i), 5.0},
                                static_cast<double>(i)});
  }
  engine.Flush();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.sessions_idled, 1u);
  EXPECT_EQ(stats.live_sessions, 1u);
  const auto ends = sink.ends();
  ASSERT_EQ(ends.count(1), 1u);
  EXPECT_EQ(ends.at(1),
            std::vector<SessionEndReason>{SessionEndReason::kIdle});
  engine.FinishAll();
}

TEST(FleetEngineTest, AggregatesDecisionStatsAcrossSessions) {
  const FleetDataset fleet = BuildFleetDataset(5, 0.04, 7006);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 4;
  FleetEngine engine(options, sink);
  engine.IngestBatch(fleet.feed);

  // Live sessions' stats are part of the aggregate even before FinishAll.
  const FleetStats mid = engine.Stats();
  EXPECT_EQ(mid.decisions.points, fleet.feed.size());
  EXPECT_EQ(mid.live_sessions, fleet.devices.size());
  EXPECT_GT(mid.state_bytes,
            fleet.devices.size() * FleetEngine::kSessionBaseBytes - 1);
  EXPECT_GE(mid.peak_state_bytes, mid.state_bytes);

  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.decisions.points, fleet.feed.size());
  EXPECT_EQ(stats.records_ingested, fleet.feed.size());
  EXPECT_EQ(stats.key_points_emitted,
            [&] {
              std::size_t n = 0;
              for (const auto& [device, keys] : sink.keys()) n += keys.size();
              return n;
            }());
  EXPECT_EQ(stats.live_sessions, 0u);
  EXPECT_EQ(stats.state_bytes, 0u);
}

TEST(FleetEngineTest, OfflineAlgorithmRecordsAreDroppedAndCounted) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kDp);  // offline: no sessions
  FleetEngine engine(options, sink);
  const Trajectory stream = testing_util::SmoothWalk(7007, 50);
  for (const TrackPoint& pt : stream) engine.Ingest(9, pt);
  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_EQ(stats.records_ingested, 0u);
  EXPECT_EQ(stats.records_dropped, stream.size());
  EXPECT_TRUE(sink.keys().empty());
}

TEST(FleetEngineTest, EmptyBatchAndDestructionWithoutFinishAreSafe) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 3;
  {
    FleetEngine engine(options, sink);
    engine.IngestBatch({});
    engine.Flush();
    const Trajectory stream = testing_util::SmoothWalk(7008, 100);
    for (const TrackPoint& pt : stream) engine.Ingest(1, pt);
    // Destructor drains the queue but does not finalize sessions.
  }
  for (const auto& [device, reasons] : sink.ends()) {
    (void)device;
    EXPECT_TRUE(reasons.empty());
  }
}

/// Builds an interleaved feed from per-device streams by a caller-chosen
/// pattern; returns the feed (per-device record order always preserved).
using Pattern = std::vector<std::size_t>;  // sequence of device indices

std::vector<FleetRecord> Weave(const FleetDataset& fleet,
                               const Pattern& pattern,
                               std::size_t burst) {
  std::vector<FleetRecord> feed;
  std::vector<std::size_t> cursor(fleet.devices.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const std::size_t d : pattern) {
      const auto& [device, stream] = fleet.devices[d];
      for (std::size_t b = 0; b < burst && cursor[d] < stream.size(); ++b) {
        feed.push_back(FleetRecord{device, stream[cursor[d]++]});
        progressed = true;
      }
    }
  }
  return feed;
}

TEST(FleetEngineTest, RunCoalescingFuzzAcrossInterleavings) {
  // The router coalesces consecutive same-device records into runs and
  // dispatches each run as one PushBatch. Whatever the interleaving shape
  // — long bursts, strict round-robin (every run length 1), whole streams
  // back to back, adversarial two-device alternation, or random bursts —
  // per-device output must stay byte-identical to sequential CompressAll
  // at every shard count including inline mode, for every streaming
  // algorithm, under randomized ingest chunking.
  const FleetDataset fleet = BuildFleetDataset(6, 0.04, 7100);
  const std::size_t n = fleet.devices.size();

  struct NamedFeed {
    const char* name;
    std::vector<FleetRecord> feed;
  };
  std::vector<NamedFeed> feeds;
  Pattern all;
  for (std::size_t d = 0; d < n; ++d) all.push_back(d);
  feeds.push_back({"round_robin", Weave(fleet, all, 1)});
  feeds.push_back({"bursty", Weave(fleet, all, 7)});
  feeds.push_back({"single_device", Weave(fleet, all, 1u << 20)});
  // Adversarial alternation: A,B,A,B,... then C,D,C,D,... — run length 1
  // with only two live devices at a time, the worst case for coalescing.
  Pattern pairs;
  for (std::size_t d = 0; d + 1 < n; d += 2) {
    for (int repeat = 0; repeat < 64; ++repeat) {
      pairs.push_back(d);
      pairs.push_back(d + 1);
    }
  }
  feeds.push_back({"alternation", Weave(fleet, pairs, 1)});
  feeds.push_back({"original_bursty_random", fleet.feed});

  const AlgorithmId algorithms[] = {AlgorithmId::kBqs, AlgorithmId::kFbqs,
                                    AlgorithmId::kBdp, AlgorithmId::kBgd,
                                    AlgorithmId::kDr};
  Rng rng(0xC0A1E5CEULL);
  for (const AlgorithmId id : algorithms) {
    const AlgorithmConfig config = ConfigFor(id);
    const auto reference = SequentialReference(fleet, config);
    for (const NamedFeed& named : feeds) {
      ASSERT_EQ(named.feed.size(), fleet.feed.size()) << named.name;
      for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                       std::size_t{2}, std::size_t{8}}) {
        CollectingSink sink;
        FleetEngineOptions options;
        options.algorithm = config;
        options.num_shards = shards;
        // Small blocks so every feed shape crosses block boundaries.
        options.block_capacity = 64;
        {
          FleetEngine engine(options, sink);
          const std::size_t chunk = static_cast<std::size_t>(
              rng.UniformInt(1, 300));
          RunFleet(engine, named.feed, chunk);
        }
        EXPECT_EQ(sink.keys(), reference)
            << AlgorithmName(id) << " feed=" << named.name
            << " shards=" << shards;
      }
    }
  }
}

TEST(FleetEngineTest, PipelineCountersExposeIngestShape) {
  const FleetDataset fleet = BuildFleetDataset(8, 0.05, 7200);

  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 2;
  options.block_capacity = 64;
  // A shallow ring guarantees the producer laps the arena, so recycling
  // provably engages even on a single-core machine.
  options.max_pending_blocks = 4;
  {
    CollectingSink sink;
    FleetEngine engine(options, sink);
    RunFleet(engine, fleet.feed, 512);
    const FleetStats stats = engine.Stats();
    EXPECT_EQ(stats.records_ingested, fleet.feed.size());
    // Run coalescing happened: strictly fewer dispatches than records
    // (the bursty feed guarantees multi-record runs), and every record
    // went through some run.
    EXPECT_GT(stats.coalesced_runs, 0u);
    EXPECT_LT(stats.coalesced_runs, stats.records_ingested);
    // Block pipeline engaged and the arena recycled: far more blocks
    // dispatched than ever allocated (allocations are bounded by the few
    // blocks that can be outstanding at once).
    EXPECT_GT(stats.blocks_dispatched, 0u);
    EXPECT_EQ(stats.blocks_allocated + stats.blocks_recycled,
              stats.blocks_dispatched);
    EXPECT_GT(stats.blocks_recycled, 0u);
    EXPECT_LE(stats.blocks_allocated,
              2 * (options.max_pending_blocks + 2));
    EXPECT_LE(stats.peak_queue_depth, options.max_pending_blocks);
  }

  // Inline mode (num_shards 0 and 1 both take the single-shard shortcut):
  // no threads, no blocks, no queue — but the same coalescing, counted
  // through the same stats.
  {
    CollectingSink sink;
    FleetEngineOptions one = options;
    one.num_shards = 1;
    FleetEngine engine(one, sink);
    EXPECT_TRUE(engine.inline_mode());
  }
  options.num_shards = 0;
  CollectingSink sink;
  FleetEngine engine(options, sink);
  RunFleet(engine, fleet.feed, 512);
  const FleetStats stats = engine.Stats();
  EXPECT_TRUE(engine.inline_mode());
  EXPECT_EQ(engine.num_shards(), 1u);
  EXPECT_EQ(stats.records_ingested, fleet.feed.size());
  EXPECT_GT(stats.coalesced_runs, 0u);
  EXPECT_EQ(stats.blocks_dispatched, 0u);
  EXPECT_EQ(stats.blocks_allocated, 0u);
  EXPECT_EQ(stats.worker_wakes, 0u);
  EXPECT_EQ(stats.backpressure_waits, 0u);
  EXPECT_EQ(stats.peak_queue_depth, 0u);
}

TEST(FleetEngineTest, InlineModeCompressesSynchronously) {
  const Trajectory stream = testing_util::SmoothWalk(7300, 600);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kBqs);
  options.num_shards = 0;
  FleetEngine engine(options, sink);

  std::vector<FleetRecord> records;
  records.reserve(stream.size());
  for (const TrackPoint& pt : stream) records.push_back({11, pt});
  engine.IngestBatch(records);
  // No Flush, no Finish: inline mode already compressed everything on the
  // caller thread (the first point is always emitted immediately).
  EXPECT_FALSE(sink.keys().empty());
  EXPECT_GE(sink.keys().at(11).size(), 1u);
  const FleetStats mid = engine.Stats();
  EXPECT_EQ(mid.records_ingested, stream.size());
  EXPECT_EQ(mid.live_sessions, 1u);

  // FinishDevice is immediate too.
  engine.FinishDevice(11);
  ASSERT_EQ(sink.ends().count(11), 1u);
  EXPECT_EQ(sink.ends().at(11),
            std::vector<SessionEndReason>{SessionEndReason::kFinished});

  // Output equals the sequential reference, like every other mode.
  auto reference = MakeStreamCompressor(options.algorithm);
  EXPECT_EQ(sink.keys().at(11), CompressAll(*reference, stream).keys);
}

TEST(FleetEngineTest, StatsSnapshotsAreMonotoneAndDrainVisible) {
  // The Stats() contract: every cumulative counter and peak is monotone
  // non-decreasing across snapshots, and a snapshot after Flush() (or
  // Stats' own drain) reflects every record ingested before it — in both
  // accounting modes, lazy (no budget) and eager (budget set).
  const FleetDataset fleet = BuildFleetDataset(6, 0.05, 7400);
  for (const std::size_t budget : {std::size_t{0}, std::size_t{1} << 20}) {
    CollectingSink sink;
    FleetEngineOptions options;
    options.algorithm = ConfigFor(AlgorithmId::kBqs);
    options.num_shards = 2;
    options.block_capacity = 16;
    // A one-deep ring with tiny blocks forces real backpressure, so the
    // blocked-producer counter provably registers and stays visible.
    options.max_pending_blocks = 1;
    options.memory_budget_bytes = budget;
    FleetEngine engine(options, sink);

    FleetStats prev;
    std::size_t fed = 0;
    const std::size_t chunk = 200;
    for (std::size_t i = 0; i < fleet.feed.size(); i += chunk) {
      const std::size_t n = std::min(chunk, fleet.feed.size() - i);
      engine.IngestBatch(
          std::span<const FleetRecord>(fleet.feed.data() + i, n));
      fed += n;
      const FleetStats s = engine.Stats();
      // Stats() drains, so the snapshot covers everything fed so far.
      EXPECT_EQ(s.records_ingested, fed) << "budget " << budget;
      EXPECT_GE(s.records_ingested, prev.records_ingested);
      EXPECT_GE(s.key_points_emitted, prev.key_points_emitted);
      EXPECT_GE(s.coalesced_runs, prev.coalesced_runs);
      EXPECT_GE(s.blocks_dispatched, prev.blocks_dispatched);
      EXPECT_GE(s.worker_wakes, prev.worker_wakes);
      EXPECT_GE(s.backpressure_waits, prev.backpressure_waits);
      EXPECT_GE(s.peak_queue_depth, prev.peak_queue_depth);
      EXPECT_GE(s.peak_state_bytes, prev.peak_state_bytes);
      EXPECT_GE(s.sessions_opened, prev.sessions_opened);
      // Peaks dominate the current values they track.
      EXPECT_GE(s.peak_state_bytes, s.state_bytes);
      EXPECT_GE(s.peak_queue_depth, 1u);
      prev = s;
    }

    engine.Flush();
    const FleetStats flushed = engine.Stats();
    EXPECT_EQ(flushed.records_ingested, fleet.feed.size());
    // The shallow ring made the producer block; the waits survived into
    // the post-Flush snapshot and never decreased along the way.
    EXPECT_GT(flushed.backpressure_waits, 0u) << "budget " << budget;
    EXPECT_GE(flushed.backpressure_waits, prev.backpressure_waits);

    engine.FinishAll();
    const FleetStats end = engine.Stats();
    EXPECT_EQ(end.live_sessions, 0u);
    EXPECT_EQ(end.state_bytes, 0u);
    EXPECT_GE(end.peak_state_bytes, flushed.peak_state_bytes);
    EXPECT_GE(end.key_points_emitted, flushed.key_points_emitted);
    EXPECT_EQ(end.records_ingested + end.records_dropped,
              fleet.feed.size());
  }
}

TEST(FleetEngineTest, EvictedDeviceReappearsWithByteIdenticalSessions) {
  // Budget eviction is not the end of a device: its next record opens a
  // fresh session transparently. Each of the device's sessions must be
  // byte-identical to compressing that session's records alone — the
  // kEvicted -> reappear lifecycle the service layer promises.
  const AlgorithmConfig config = ConfigFor(AlgorithmId::kBqs);
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = config;
  options.num_shards = 1;
  // Holds device 1's small session comfortably, but not alongside a grown
  // neighbor: feeding devices 2 and 3 must push device 1 (the LRU) out.
  options.memory_budget_bytes = 2048;
  FleetEngine engine(options, sink);

  const Trajectory first = testing_util::SmoothWalk(7501, 40);
  const Trajectory second = testing_util::SmoothWalk(7502, 40);
  for (const TrackPoint& pt : first) engine.Ingest(1, pt);
  for (DeviceId device = 2; device <= 3; ++device) {
    const Trajectory pressure = testing_util::SmoothWalk(7500 + 10 * device,
                                                         200);
    for (const TrackPoint& pt : pressure) engine.Ingest(device, pt);
  }
  {
    const auto ends = sink.ends();
    ASSERT_TRUE(ends.contains(1));
    EXPECT_EQ(ends.at(1), std::vector<SessionEndReason>{
                              SessionEndReason::kEvicted});
  }

  // The device reappears and finishes normally.
  for (const TrackPoint& pt : second) engine.Ingest(1, pt);
  engine.FinishAll();
  const FleetStats stats = engine.Stats();
  EXPECT_GE(stats.sessions_evicted, 1u);
  EXPECT_GE(stats.sessions_opened, 4u);  // device 1 twice, devices 2 and 3

  const auto ends = sink.ends();
  EXPECT_EQ(ends.at(1),
            (std::vector<SessionEndReason>{SessionEndReason::kEvicted,
                                           SessionEndReason::kFinished}));
  // Session 1 closed with its full compressed output (eviction finalizes
  // through the same FinishTo path), session 2 compressed from scratch.
  auto reference = MakeStreamCompressor(config);
  std::vector<KeyPoint> expected = CompressAll(*reference, first).keys;
  reference->Reset();
  const std::vector<KeyPoint> again = CompressAll(*reference, second).keys;
  expected.insert(expected.end(), again.begin(), again.end());
  EXPECT_EQ(sink.keys().at(1), expected);
}

TEST(FleetEngineTest, ShardRoutingIsStableAndInRange) {
  CollectingSink sink;
  FleetEngineOptions options;
  options.algorithm = ConfigFor(AlgorithmId::kFbqs);
  options.num_shards = 8;
  FleetEngine engine(options, sink);
  ASSERT_EQ(engine.num_shards(), 8u);
  std::vector<std::size_t> hits(engine.num_shards(), 0);
  for (DeviceId device = 0; device < 1000; ++device) {
    const std::size_t shard = engine.ShardOf(device);
    ASSERT_LT(shard, engine.num_shards());
    EXPECT_EQ(shard, engine.ShardOf(device));  // stable
    ++hits[shard];
  }
  // splitmix64 routing should spread sequential ids across all shards.
  for (const std::size_t h : hits) EXPECT_GT(h, 50u);
}

}  // namespace
}  // namespace bqs
