// Dead Reckoning: prediction-error bound and its compression behaviour.
#include "baselines/dead_reckoning.h"

#include <gtest/gtest.h>

#include "core/fbqs_compressor.h"
#include "simulation/random_walk.h"
#include "test_util.h"

namespace bqs {
namespace {

// Replays the DR reconstruction: position at each original sample time is
// extrapolated from the last report before it.
double MaxPredictionError(const Trajectory& walk,
                          const CompressedTrajectory& reports) {
  double worst = 0.0;
  std::size_t r = 0;
  for (std::size_t i = 0; i < walk.size(); ++i) {
    while (r + 1 < reports.size() && reports.keys[r + 1].index <= i) ++r;
    const TrackPoint& anchor = reports.keys[r].point;
    const double dt = walk[i].t - anchor.t;
    const Vec2 predicted = anchor.pos + dt * anchor.velocity;
    worst = std::max(worst, Distance(predicted, walk[i].pos));
  }
  return worst;
}

TEST(DeadReckoningTest, PredictionErrorBounded) {
  RandomWalkOptions options;
  options.num_points = 5000;
  options.seed = 71;
  const Trajectory walk = GenerateRandomWalk(options);
  DeadReckoning dr(DeadReckoningOptions{10.0});
  const CompressedTrajectory reports = CompressAll(dr, walk);
  // Every sample time: the DR-predicted position is within epsilon of the
  // true fix (the final point is reported by Finish, so all anchors hold).
  EXPECT_LE(MaxPredictionError(walk, reports), 10.0 * (1.0 + 1e-9));
}

TEST(DeadReckoningTest, StationaryStreamReportsTwice) {
  Trajectory walk;
  for (int i = 0; i < 100; ++i) {
    walk.push_back(TrackPoint{{5.0, 5.0}, static_cast<double>(i), {0, 0}});
  }
  DeadReckoning dr(DeadReckoningOptions{5.0});
  const CompressedTrajectory reports = CompressAll(dr, walk);
  EXPECT_EQ(reports.size(), 2u);  // first report + Finish
}

TEST(DeadReckoningTest, ConstantVelocityNeedsNoMidReports) {
  Trajectory walk;
  for (int i = 0; i < 200; ++i) {
    walk.push_back(
        TrackPoint{{i * 8.0, i * 6.0}, static_cast<double>(i), {8.0, 6.0}});
  }
  DeadReckoning dr(DeadReckoningOptions{5.0});
  EXPECT_EQ(CompressAll(dr, walk).size(), 2u);
}

TEST(DeadReckoningTest, TurnsForceReports) {
  Trajectory walk;
  double t = 0.0;
  // East then north at constant speed; the turn must produce a report.
  for (int i = 0; i < 50; ++i) {
    walk.push_back(TrackPoint{{i * 10.0, 0.0}, t, {10.0, 0.0}});
    t += 1.0;
  }
  for (int i = 1; i <= 50; ++i) {
    walk.push_back(TrackPoint{{490.0, i * 10.0}, t, {0.0, 10.0}});
    t += 1.0;
  }
  DeadReckoning dr(DeadReckoningOptions{5.0});
  const CompressedTrajectory reports = CompressAll(dr, walk);
  EXPECT_GE(reports.size(), 3u);
  EXPECT_LE(reports.size(), 6u);
}

TEST(DeadReckoningTest, UsesMorePointsThanFbqsOnSyntheticData) {
  // Fig. 8(b): DR needs ~40-50% more points than FBQS at equal tolerance.
  RandomWalkOptions options;
  options.num_points = 10000;
  options.seed = 72;
  const Trajectory walk = GenerateRandomWalk(options);
  DeadReckoning dr(DeadReckoningOptions{10.0});
  FbqsCompressor fbqs(BqsOptions{.epsilon = 10.0});
  const std::size_t dr_points = CompressAll(dr, walk).size();
  const std::size_t fbqs_points = CompressAll(fbqs, walk).size();
  EXPECT_GT(dr_points, fbqs_points);
}

TEST(DeadReckoningTest, TighterToleranceMoreReports) {
  RandomWalkOptions options;
  options.num_points = 4000;
  options.seed = 73;
  const Trajectory walk = GenerateRandomWalk(options);
  std::size_t prev = 0;
  for (double eps : {20.0, 10.0, 5.0, 2.0}) {
    DeadReckoning dr(DeadReckoningOptions{eps});
    const std::size_t n = CompressAll(dr, walk).size();
    EXPECT_GE(n, prev);
    prev = n;
  }
}

TEST(DeadReckoningTest, EdgeCases) {
  DeadReckoning dr(DeadReckoningOptions{});
  std::vector<KeyPoint> keys;
  dr.Finish(&keys);
  EXPECT_TRUE(keys.empty());
  dr.Push(TrackPoint{{0, 0}, 0, {1, 1}}, &keys);
  dr.Finish(&keys);
  EXPECT_EQ(keys.size(), 1u);
}

}  // namespace
}  // namespace bqs
