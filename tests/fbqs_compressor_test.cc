// FbqsCompressor: error bound, O(1) space claims, and its relationship to
// BQS (never fewer points, close on smooth data).
#include "core/fbqs_compressor.h"

#include <gtest/gtest.h>

#include "core/bqs_compressor.h"
#include "test_util.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

using testing_util::JaggedWalk;
using testing_util::NoisyLine;
using testing_util::SmoothWalk;

class FbqsErrorBoundTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(FbqsErrorBoundTest, CompressionIsErrorBounded) {
  const auto [seed, epsilon] = GetParam();
  for (const bool jagged : {false, true}) {
    const Trajectory walk =
        jagged ? JaggedWalk(seed, 3000) : SmoothWalk(seed, 3000);
    BqsOptions options;
    options.epsilon = epsilon;
    FbqsCompressor fbqs(options);
    const CompressedTrajectory compressed = CompressAll(fbqs, walk);
    const DeviationReport report =
        EvaluateCompression(walk, compressed, options.metric);
    EXPECT_LE(report.max_deviation, epsilon * (1.0 + 1e-9))
        << (jagged ? "jagged" : "smooth") << " seed=" << seed
        << " eps=" << epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTolerances, FbqsErrorBoundTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(2.0, 5.0, 10.0, 20.0)));

TEST(FbqsCompressorTest, NeverUsesTheSegmentBuffer) {
  const Trajectory walk = JaggedWalk(71, 3000);
  FbqsCompressor fbqs(BqsOptions{.epsilon = 5.0});
  std::vector<KeyPoint> keys;
  for (const TrackPoint& p : walk) {
    fbqs.Push(p, &keys);
    ASSERT_EQ(fbqs.engine().buffer_size(), 0u)
        << "FBQS must stay O(1): no dynamic buffer growth";
    // FBQS never resolves exactly, so it must never touch the hull either.
    ASSERT_EQ(fbqs.engine().hull_size(), 0u)
        << "FBQS must keep no exact-resolve state at all";
  }
}

TEST(FbqsCompressorTest, StreamingStateFitsTheTargetPlatform) {
  // The paper's platform has 4 KB RAM total; the FBQS streaming state
  // (quadrant boxes + angles + warm-up array + bookkeeping) must fit it
  // with room to spare. The std::function probe slot and vtable are
  // included in this figure, so the bound is conservative. The four
  // per-quadrant significant-point caches (4 x 192 B, the fast kernel's
  // space-for-time trade that removes the per-push rebuild) are part of
  // the budget.
  EXPECT_LE(sizeof(FbqsCompressor), 3072u);
}

TEST(FbqsCompressorTest, StaysCloseToBqs) {
  // Fig. 7: FBQS tracks BQS closely thanks to >90% pruning power. FBQS
  // usually takes a few more points; the reverse can happen occasionally
  // because greedy inclusion is not globally optimal, so the check is a
  // two-sided closeness band rather than a strict ordering.
  for (uint64_t seed : {81u, 82u, 83u}) {
    for (double epsilon : {3.0, 10.0}) {
      const Trajectory walk = SmoothWalk(seed, 4000);
      BqsOptions options;
      options.epsilon = epsilon;
      BqsCompressor bqs(options);
      FbqsCompressor fbqs(options);
      const auto via_bqs = CompressAll(bqs, walk);
      const auto via_fbqs = CompressAll(fbqs, walk);
      EXPECT_GE(via_fbqs.size() + 4,
                static_cast<std::size_t>(
                    static_cast<double>(via_bqs.size()) * 0.9));
      EXPECT_LE(via_fbqs.size(),
                static_cast<std::size_t>(
                    static_cast<double>(via_bqs.size()) * 1.6) +
                    4u);
    }
  }
}

TEST(FbqsCompressorTest, FastKernelIsByteIdenticalToReference) {
  // FBQS is the sharpest kernel differential there is: every bound
  // decision is final (no exact resolve to absorb a disagreement), so any
  // fast-vs-reference discrepancy surfaces as a different key sequence.
  for (uint64_t seed : {191u, 192u, 193u}) {
    const Trajectory walks[] = {SmoothWalk(seed, 2000), JaggedWalk(seed, 2000),
                                testing_util::VonMisesWalk(seed, 2000, 2.0)};
    for (const Trajectory& walk : walks) {
      for (double epsilon : {2.5, 10.0}) {
        for (DistanceMetric metric : {DistanceMetric::kPointToLine,
                                      DistanceMetric::kPointToSegment}) {
          BqsOptions fast_options;
          fast_options.epsilon = epsilon;
          fast_options.metric = metric;
          BqsOptions reference_options = fast_options;
          reference_options.bound_kernel = BoundKernel::kReference;

          FbqsCompressor fast(fast_options);
          FbqsCompressor reference(reference_options);
          const CompressedTrajectory fast_out = CompressAll(fast, walk);
          const CompressedTrajectory reference_out =
              CompressAll(reference, walk);
          ASSERT_EQ(fast_out.size(), reference_out.size())
              << "seed=" << seed << " eps=" << epsilon
              << " metric=" << static_cast<int>(metric);
          for (std::size_t i = 0; i < fast_out.size(); ++i) {
            ASSERT_EQ(fast_out.keys[i].index, reference_out.keys[i].index)
                << "key " << i << " seed=" << seed;
            ASSERT_TRUE(fast_out.keys[i].point == reference_out.keys[i].point)
                << "key " << i << " seed=" << seed;
          }
          EXPECT_EQ(fast.stats().uncertain_splits,
                    reference.stats().uncertain_splits);
          EXPECT_EQ(fast.stats().upper_bound_includes,
                    reference.stats().upper_bound_includes);
        }
      }
    }
  }
}

TEST(FbqsCompressorTest, NoExactComputationsEver) {
  const Trajectory walk = JaggedWalk(91, 3000);
  FbqsCompressor fbqs(BqsOptions{.epsilon = 5.0});
  CompressAll(fbqs, walk);
  EXPECT_EQ(fbqs.stats().exact_computations, 0u);
  EXPECT_EQ(fbqs.stats().exact_includes, 0u);
  EXPECT_EQ(fbqs.stats().exact_splits, 0u);
}

TEST(FbqsCompressorTest, SubToleranceNoisyLineCompressesWell) {
  const Trajectory walk = NoisyLine(92, 500, 1.0);
  FbqsCompressor fbqs(BqsOptions{.epsilon = 5.0});
  const CompressedTrajectory compressed = CompressAll(fbqs, walk);
  // A sound implementation cannot always collapse a noisy line to exactly
  // two points: the centroid rotation is biased by the warm-up noise
  // (~0.01-0.03 rad here), the run therefore drifts off the rotated x axis,
  // and the sound upper bound over box-intersect-wedge grows with segment
  // length until FBQS conservatively splits. (The paper's Eq. (8) would
  // keep 2 points, but it is unsound — see DESIGN.md for the
  // counterexample.) What we require: a high compression rate and, of
  // course, the error bound. BQS proper resolves these cases exactly and
  // does reach 2 points (see BqsCompressorTest).
  EXPECT_LE(compressed.size(), 16u);
  const DeviationReport report =
      EvaluateCompression(walk, compressed, DistanceMetric::kPointToLine);
  EXPECT_LE(report.max_deviation, 5.0 * (1.0 + 1e-9));
}

TEST(FbqsCompressorTest, SegmentMetricIsErrorBounded) {
  const Trajectory walk = JaggedWalk(93, 2500);
  BqsOptions options;
  options.epsilon = 7.0;
  options.metric = DistanceMetric::kPointToSegment;
  FbqsCompressor fbqs(options);
  const CompressedTrajectory compressed = CompressAll(fbqs, walk);
  const DeviationReport report =
      EvaluateCompression(walk, compressed, options.metric);
  EXPECT_LE(report.max_deviation, options.epsilon * (1.0 + 1e-9));
}

TEST(FbqsCompressorTest, ResetIsDeterministic) {
  const Trajectory walk = JaggedWalk(94, 1000);
  FbqsCompressor fbqs(BqsOptions{.epsilon = 6.0});
  const auto first = CompressAll(fbqs, walk);
  const auto second = CompressAll(fbqs, walk);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.keys[i].index, second.keys[i].index);
  }
}

TEST(FbqsCompressorTest, UncertainSplitsAreTheOnlyExtraCost) {
  // Every extra key FBQS takes over BQS stems from an uncertain-bound
  // aggressive split; verify the accounting links up.
  const Trajectory walk = SmoothWalk(95, 4000);
  BqsOptions options;
  options.epsilon = 10.0;
  FbqsCompressor fbqs(options);
  const auto compressed = CompressAll(fbqs, walk);
  const DecisionStats& stats = fbqs.stats();
  // keys = stream head + one key per split + the final point.
  EXPECT_EQ(stats.segments + 2, compressed.size());
}

}  // namespace
}  // namespace bqs
