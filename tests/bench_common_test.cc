// Tests for the bench harness glue: ScaleFromArgs argv/env precedence and
// rejection of non-positive or malformed scales.
#include "bench_common.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace bqs {
namespace bench {
namespace {

// Helper owning a mutable argv array (ScaleFromArgs takes char**).
class ScaleFromArgsTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("BQS_BENCH_SCALE"); }
  void TearDown() override { unsetenv("BQS_BENCH_SCALE"); }

  static double Run(const char* arg1, double default_scale = 0.35) {
    static char prog[] = "bench";
    static char buf[64];
    char* argv[3] = {prog, nullptr, nullptr};
    int argc = 1;
    if (arg1 != nullptr) {
      std::snprintf(buf, sizeof(buf), "%s", arg1);
      argv[1] = buf;
      argc = 2;
    }
    return ScaleFromArgs(argc, argv, default_scale);
  }
};

TEST_F(ScaleFromArgsTest, DefaultWhenNoArgvNoEnv) {
  EXPECT_DOUBLE_EQ(Run(nullptr), 0.35);
  EXPECT_DOUBLE_EQ(Run(nullptr, 2.0), 2.0);
}

TEST_F(ScaleFromArgsTest, ArgvOverridesDefault) {
  EXPECT_DOUBLE_EQ(Run("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(Run("0.05"), 0.05);
}

TEST_F(ScaleFromArgsTest, EnvOverridesDefault) {
  setenv("BQS_BENCH_SCALE", "0.7", 1);
  EXPECT_DOUBLE_EQ(Run(nullptr), 0.7);
}

TEST_F(ScaleFromArgsTest, ArgvTakesPrecedenceOverEnv) {
  setenv("BQS_BENCH_SCALE", "0.7", 1);
  EXPECT_DOUBLE_EQ(Run("1.25"), 1.25);
}

TEST_F(ScaleFromArgsTest, NonPositiveArgvFallsThroughToEnv) {
  setenv("BQS_BENCH_SCALE", "0.9", 1);
  EXPECT_DOUBLE_EQ(Run("0"), 0.9);
  EXPECT_DOUBLE_EQ(Run("-3.5"), 0.9);
}

TEST_F(ScaleFromArgsTest, NonPositiveEverywhereFallsBackToDefault) {
  setenv("BQS_BENCH_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(Run("0"), 0.35);
  setenv("BQS_BENCH_SCALE", "0", 1);
  EXPECT_DOUBLE_EQ(Run(nullptr, 0.5), 0.5);
}

TEST_F(ScaleFromArgsTest, MalformedInputsAreRejected) {
  // std::atof returns 0.0 on parse failure, which counts as non-positive.
  EXPECT_DOUBLE_EQ(Run("fast"), 0.35);
  setenv("BQS_BENCH_SCALE", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(Run(nullptr), 0.35);
}

TEST_F(ScaleFromArgsTest, LeadingNumberParsesLikeAtof) {
  // atof semantics: trailing junk after a valid prefix is ignored.
  EXPECT_DOUBLE_EQ(Run("2.5x"), 2.5);
}

}  // namespace
}  // namespace bench
}  // namespace bqs
