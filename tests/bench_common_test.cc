// Tests for the bench harness glue: ScaleFromArgs argv/env precedence and
// rejection of non-positive or malformed scales, flag parsing, and the
// JsonReport emitter.
#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace bqs {
namespace bench {
namespace {

// Helper owning a mutable argv array (ScaleFromArgs takes char**).
class ScaleFromArgsTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("BQS_BENCH_SCALE"); }
  void TearDown() override { unsetenv("BQS_BENCH_SCALE"); }

  static double Run(const char* arg1, double default_scale = 0.35) {
    static char prog[] = "bench";
    static char buf[64];
    char* argv[3] = {prog, nullptr, nullptr};
    int argc = 1;
    if (arg1 != nullptr) {
      std::snprintf(buf, sizeof(buf), "%s", arg1);
      argv[1] = buf;
      argc = 2;
    }
    return ScaleFromArgs(argc, argv, default_scale);
  }
};

TEST_F(ScaleFromArgsTest, DefaultWhenNoArgvNoEnv) {
  EXPECT_DOUBLE_EQ(Run(nullptr), 0.35);
  EXPECT_DOUBLE_EQ(Run(nullptr, 2.0), 2.0);
}

TEST_F(ScaleFromArgsTest, ArgvOverridesDefault) {
  EXPECT_DOUBLE_EQ(Run("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(Run("0.05"), 0.05);
}

TEST_F(ScaleFromArgsTest, EnvOverridesDefault) {
  setenv("BQS_BENCH_SCALE", "0.7", 1);
  EXPECT_DOUBLE_EQ(Run(nullptr), 0.7);
}

TEST_F(ScaleFromArgsTest, ArgvTakesPrecedenceOverEnv) {
  setenv("BQS_BENCH_SCALE", "0.7", 1);
  EXPECT_DOUBLE_EQ(Run("1.25"), 1.25);
}

TEST_F(ScaleFromArgsTest, NonPositiveArgvFallsThroughToEnv) {
  setenv("BQS_BENCH_SCALE", "0.9", 1);
  EXPECT_DOUBLE_EQ(Run("0"), 0.9);
  EXPECT_DOUBLE_EQ(Run("-3.5"), 0.9);
}

TEST_F(ScaleFromArgsTest, NonPositiveEverywhereFallsBackToDefault) {
  setenv("BQS_BENCH_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(Run("0"), 0.35);
  setenv("BQS_BENCH_SCALE", "0", 1);
  EXPECT_DOUBLE_EQ(Run(nullptr, 0.5), 0.5);
}

TEST_F(ScaleFromArgsTest, MalformedInputsAreRejected) {
  // std::atof returns 0.0 on parse failure, which counts as non-positive.
  EXPECT_DOUBLE_EQ(Run("fast"), 0.35);
  setenv("BQS_BENCH_SCALE", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(Run(nullptr), 0.35);
}

TEST_F(ScaleFromArgsTest, LeadingNumberParsesLikeAtof) {
  // atof semantics: trailing junk after a valid prefix is ignored.
  EXPECT_DOUBLE_EQ(Run("2.5x"), 2.5);
}

// --scale flag forms (what the CI smoke run passes), incl. mixed with
// other flags anywhere in argv.
class FlagArgsTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("BQS_BENCH_SCALE"); }
  void TearDown() override { unsetenv("BQS_BENCH_SCALE"); }

  /// Owns the argv storage, so several packs can coexist in one test.
  struct ArgvPack {
    std::vector<std::string> storage;
    std::vector<char*> argv;
    int argc() const { return static_cast<int>(argv.size()); }
    char** data() { return argv.data(); }
  };

  static ArgvPack Argv(std::initializer_list<const char*> args) {
    ArgvPack pack;
    pack.storage.emplace_back("bench");
    pack.storage.insert(pack.storage.end(), args.begin(), args.end());
    // Pointers are taken only after storage stops growing; moving the pack
    // moves the vectors' heap buffers, leaving the strings in place.
    for (std::string& s : pack.storage) pack.argv.push_back(s.data());
    return pack;
  }
};

TEST_F(FlagArgsTest, ScaleFlagWithSeparateValue) {
  auto argv = Argv({"--scale", "0.05"});
  EXPECT_DOUBLE_EQ(ScaleFromArgs(argv.argc(), argv.data()), 0.05);
}

TEST_F(FlagArgsTest, ScaleFlagWithEquals) {
  auto argv = Argv({"--scale=1.25"});
  EXPECT_DOUBLE_EQ(ScaleFromArgs(argv.argc(), argv.data()), 1.25);
}

TEST_F(FlagArgsTest, ScaleFlagAfterOtherFlags) {
  auto argv = Argv({"--out", "x.json", "--scale", "0.7"});
  EXPECT_DOUBLE_EQ(ScaleFromArgs(argv.argc(), argv.data()), 0.7);
}

TEST_F(FlagArgsTest, MalformedScaleFlagFallsBack) {
  auto argv = Argv({"--scale", "zero"});
  EXPECT_DOUBLE_EQ(ScaleFromArgs(argv.argc(), argv.data(), 0.4), 0.4);
}

TEST_F(FlagArgsTest, StringFlagForms) {
  auto argv = Argv({"--scale", "0.1", "--out", "a.json"});
  auto argv2 = Argv({"--out=b.json"});
  auto argv3 = Argv({"0.5"});
  EXPECT_EQ(StringFlag(argv.argc(), argv.data(), "--out", "default.json"),
            "a.json");
  EXPECT_EQ(StringFlag(argv2.argc(), argv2.data(), "--out", "default.json"),
            "b.json");
  EXPECT_EQ(StringFlag(argv3.argc(), argv3.data(), "--out", "default.json"),
            "default.json");
}

// IntFlag: the --threads/--threads= forms bench_fleet uses, with env
// fallback and the same non-positive/malformed fall-through as scale.
class IntFlagTest : public FlagArgsTest {
 protected:
  void SetUp() override { unsetenv("BQS_BENCH_THREADS"); }
  void TearDown() override { unsetenv("BQS_BENCH_THREADS"); }
};

TEST_F(IntFlagTest, SeparateAndEqualsForms) {
  auto argv = Argv({"--threads", "4"});
  EXPECT_EQ(IntFlag(argv.argc(), argv.data(), "--threads",
                    "BQS_BENCH_THREADS", 1),
            4);
  auto argv2 = Argv({"--scale", "0.1", "--threads=8"});
  EXPECT_EQ(IntFlag(argv2.argc(), argv2.data(), "--threads",
                    "BQS_BENCH_THREADS", 1),
            8);
}

TEST_F(IntFlagTest, DefaultWhenAbsent) {
  auto argv = Argv({"--scale", "0.1"});
  EXPECT_EQ(IntFlag(argv.argc(), argv.data(), "--threads",
                    "BQS_BENCH_THREADS", 6),
            6);
}

TEST_F(IntFlagTest, EnvFallbackAndArgvPrecedence) {
  setenv("BQS_BENCH_THREADS", "3", 1);
  auto argv = Argv({});
  EXPECT_EQ(IntFlag(argv.argc(), argv.data(), "--threads",
                    "BQS_BENCH_THREADS", 1),
            3);
  auto argv2 = Argv({"--threads", "5"});
  EXPECT_EQ(IntFlag(argv2.argc(), argv2.data(), "--threads",
                    "BQS_BENCH_THREADS", 1),
            5);
  // A null env var name skips the env source entirely.
  EXPECT_EQ(IntFlag(argv.argc(), argv.data(), "--threads", nullptr, 2), 2);
}

TEST_F(IntFlagTest, NonPositiveAndMalformedFallThrough) {
  setenv("BQS_BENCH_THREADS", "7", 1);
  auto argv = Argv({"--threads", "0"});
  EXPECT_EQ(IntFlag(argv.argc(), argv.data(), "--threads",
                    "BQS_BENCH_THREADS", 1),
            7);
  auto argv2 = Argv({"--threads", "-2"});
  EXPECT_EQ(IntFlag(argv2.argc(), argv2.data(), "--threads",
                    "BQS_BENCH_THREADS", 1),
            7);
  setenv("BQS_BENCH_THREADS", "lots", 1);
  auto argv3 = Argv({"--threads=many"});
  EXPECT_EQ(IntFlag(argv3.argc(), argv3.data(), "--threads",
                    "BQS_BENCH_THREADS", 9),
            9);
}

TEST(JsonReportTest, NestedDocumentStructure) {
  JsonReport json;
  json.BeginObject();
  json.Key("schema").Value("bqs-bench-v1");
  json.Key("scale").Value(0.05);
  json.Key("count").Value(uint64_t{12});
  json.Key("delta").Value(-3);
  json.Key("ok").Value(true);
  json.Key("streams").BeginArray();
  json.BeginObject();
  json.Key("name").Value("empirical");
  json.Key("values").BeginArray();
  json.Value(1).Value(2).Value(3);
  json.EndArray();
  json.EndObject();
  json.BeginObject().EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"schema\":\"bqs-bench-v1\",\"scale\":0.05,\"count\":12,"
            "\"delta\":-3,\"ok\":true,\"streams\":[{\"name\":\"empirical\","
            "\"values\":[1,2,3]},{}]}");
}

TEST(JsonReportTest, EscapesStrings) {
  JsonReport json;
  json.BeginObject();
  json.Key("text").Value("a\"b\\c\nd\te\x01");
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"text\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
}

TEST(JsonReportTest, WriteFileRoundTrips) {
  JsonReport json;
  json.BeginObject();
  json.Key("x").Value(7);
  json.EndObject();
  const std::string path = ::testing::TempDir() + "/bqs_json_report_test.json";
  ASSERT_TRUE(json.WriteFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"x\":7}\n");
}

}  // namespace
}  // namespace bench
}  // namespace bqs
