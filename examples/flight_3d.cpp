// 3-D and time-sensitive compression (paper Section V-G).
//
//   $ ./flight_3d
//
// Part 1: an aerial trajectory with altitude is compressed by the 3-D BQS
// (octants + bounding prisms + bounding planes).
// Part 2: the same 2-D stream is compressed with the time-sensitive lift,
// so the guarantee covers *where the object was at a given time* — stops
// survive compression that shape-only BQS would erase.
#include <cmath>
#include <cstdio>

#include "core/bqs3d_compressor.h"
#include "core/fbqs_compressor.h"
#include "core/time_sensitive.h"
#include "trajectory/deviation.h"

int main() {
  using namespace bqs;

  // Part 1 — a climbing, circling survey flight.
  std::vector<TrackPoint3> flight;
  for (int i = 0; i <= 1200; ++i) {
    const double t = i * 2.0;
    const double angle = t * 0.004;
    const double radius = 800.0 + 0.05 * t;
    flight.push_back(TrackPoint3{
        Vec3{radius * std::cos(angle), radius * std::sin(angle),
             120.0 + 0.03 * t},
        t});
  }

  Bqs3dOptions options3d;
  options3d.epsilon = 15.0;
  Bqs3dCompressor compressor3d(options3d, /*exact_mode=*/false);
  const CompressedTrajectory3 compressed3d =
      Compress3dAll(compressor3d, flight);
  const DeviationReport report3d =
      Evaluate3dCompression(flight, compressed3d, options3d.metric);
  std::printf("3-D survey flight: %zu fixes -> %zu key points (%.1f%%), "
              "max 3-D deviation %.2f m (bound %.0f m)\n",
              flight.size(), compressed3d.size(),
              100.0 * compressed3d.CompressionRate(flight.size()),
              report3d.max_deviation, options3d.epsilon);

  // Part 2 — time-sensitive compression of a delivery run with stops.
  Trajectory run;
  double t = 0.0;
  const auto drive = [&](Vec2 from, Vec2 to, double speed) {
    const double dist = Distance(from, to);
    const int steps = static_cast<int>(dist / (speed * 5.0));
    for (int i = 1; i <= steps; ++i) {
      run.push_back(TrackPoint{from + (to - from) * (i / double(steps)),
                               t += 5.0, (to - from) / dist * speed});
    }
  };
  const auto stop = [&](Vec2 where, double duration) {
    for (double s = 0.0; s < duration; s += 5.0) {
      run.push_back(TrackPoint{where, t += 5.0, {0, 0}});
    }
  };
  run.push_back(TrackPoint{{0, 0}, t, {0, 0}});
  drive({0, 0}, {1500, 0}, 12.0);
  stop({1500, 0}, 240.0);  // first delivery: 4 minutes
  drive({1500, 0}, {3000, 0}, 12.0);
  stop({3000, 0}, 180.0);  // second delivery
  drive({3000, 0}, {4500, 0}, 12.0);

  FbqsCompressor shape_only(BqsOptions{.epsilon = 20.0});
  const CompressedTrajectory by_shape = CompressAll(shape_only, run);

  TimeSensitiveOptions ts_options;
  ts_options.epsilon = 20.0;
  ts_options.time_scale = 0.5;  // 40 s of timing error ~ 20 m of path error
  TimeSensitiveCompressor when_and_where(ts_options);
  const CompressedTrajectory by_time = CompressAll(when_and_where, run);

  std::printf("\ndelivery run (%zu fixes, two stops on a straight road):\n",
              run.size());
  std::printf("  shape-only FBQS keeps %zu points — the stops vanish\n",
              by_shape.size());
  std::printf("  time-sensitive BQS keeps %zu points — stops survive:\n",
              by_time.size());
  for (const KeyPoint& k : by_time.keys) {
    std::printf("    x=%6.0f m  t=%5.0f s\n", k.point.pos.x, k.point.t);
  }
  return report3d.BoundedBy(options3d.epsilon) ? 0 : 1;
}
