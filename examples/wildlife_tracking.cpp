// Wildlife tracking: the paper's motivating scenario end to end.
//
//   $ ./wildlife_tracking [nights]
//
// Simulates a Camazotz tag on a flying fox (1 GPS fix per minute), runs
// FBQS on the stream exactly as the 4 KB-RAM device would, accounts flash
// usage against the 50 KB GPS budget, and reports how much longer the tag
// lasts compared to storing raw fixes — the Table II story on live data.
#include <cstdio>
#include <cstdlib>

#include "core/fbqs_compressor.h"
#include "simulation/flying_fox.h"
#include "storage/platform.h"
#include "trajectory/deviation.h"
#include "trajectory/trajectory.h"

int main(int argc, char** argv) {
  using namespace bqs;

  FlyingFoxOptions fox;
  fox.num_nights = argc > 1 ? std::atoi(argv[1]) : 7;
  fox.seed = 2015;
  std::printf("Simulating %d nights of a tagged flying fox near Brisbane\n",
              fox.num_nights);
  const GeoTrace trace = GenerateFlyingFoxTrace(fox);

  const auto projected = ProjectTrace(trace, ProjectionKind::kUtm);
  if (!projected.ok()) {
    std::fprintf(stderr, "projection failed: %s\n",
                 projected.status().ToString().c_str());
    return 1;
  }
  const Trajectory& stream = projected.value();
  std::printf("collected %zu fixes over %.0f km of flight\n", stream.size(),
              PathLength(stream) / 1000.0);

  // On-device compression + storage accounting.
  BqsOptions options;
  options.epsilon = 10.0;  // metres; animal-scale tolerance
  FbqsCompressor compressor(options);
  std::printf("FBQS streaming state: %zu bytes (must fit 4 KB RAM)\n",
              sizeof(compressor));

  const PlatformSpec spec;
  FlashStore compressed_flash(spec);
  FlashStore raw_flash(spec);
  std::vector<KeyPoint> keys;
  std::size_t raw_stored = 0;
  std::size_t raw_capacity_hit_at = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const std::size_t before = keys.size();
    compressor.Push(stream[i], &keys);
    for (std::size_t k = before; k < keys.size(); ++k) {
      compressed_flash.AppendSample();
    }
    if (raw_flash.AppendSample()) {
      ++raw_stored;
    } else if (raw_capacity_hit_at == 0) {
      raw_capacity_hit_at = i;
    }
  }
  compressor.Finish(&keys);

  CompressedTrajectory compressed;
  compressed.keys = keys;
  const DeviationReport report =
      EvaluateCompression(stream, compressed, options.metric);
  const double rate = compressed.CompressionRate(stream.size());

  std::printf("\n--- results ---\n");
  std::printf("kept %zu of %zu fixes (%.2f%%), max deviation %.2f m "
              "(bound %.0f m)\n",
              keys.size(), stream.size(), 100.0 * rate,
              report.max_deviation, options.epsilon);
  std::printf("flash used: %.1f KB of %.1f KB GPS budget\n",
              compressed_flash.used_bytes() / 1000.0,
              spec.gps_budget_bytes / 1000.0);
  if (raw_capacity_hit_at > 0) {
    std::printf("raw storage filled after fix %zu of %zu — data loss "
                "without compression!\n",
                raw_capacity_hit_at, stream.size());
  }
  std::printf("estimated operational time: raw %.1f days -> FBQS %.1f days "
              "(x%.1f longer)\n",
              EstimateOperationalDays(spec, 1.0),
              EstimateOperationalDays(spec, rate),
              EstimateOperationalDays(spec, rate) /
                  EstimateOperationalDays(spec, 1.0));
  return report.BoundedBy(options.epsilon) ? 0 : 1;
}
