// On-device trip database: the paper's maintenance procedures (Section
// V-F) — error-bounded merging of repeated trips and error-bounded ageing
// of old ones.
//
//   $ ./trip_database [days]
//
// A commuter drives the same two routes every day. Merging recognizes the
// repeats and stores them as visit counts instead of new geometry; ageing
// then re-compresses the stored polylines at a looser tolerance,
// trading fidelity of history for flash space.
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "core/fbqs_compressor.h"
#include "core/time_sensitive.h"
#include "storage/trajectory_store.h"
#include "storage/waypoint_discovery.h"
#include "trajectory/trajectory.h"

namespace {

// One commute: home -> work with mild GPS noise; reversed on the way back.
bqs::Trajectory Commute(bqs::Rng& rng, bool reverse, double t0) {
  using bqs::TrackPoint;
  using bqs::Vec2;
  const Vec2 waypoints[] = {{0, 0},       {1200, 60},  {2400, 30},
                            {2500, 1400}, {2450, 2800}, {3900, 2900}};
  bqs::Trajectory out;
  double t = t0;
  const int n = static_cast<int>(std::size(waypoints));
  for (int w = 0; w + 1 < n; ++w) {
    const Vec2 a = waypoints[reverse ? n - 1 - w : w];
    const Vec2 b = waypoints[reverse ? n - 2 - w : w + 1];
    const int steps = static_cast<int>(Distance(a, b) / 80.0);
    for (int i = 0; i < steps; ++i) {
      Vec2 p = a + (b - a) * (static_cast<double>(i) / steps);
      p += Vec2{rng.Normal(0.0, 2.0), rng.Normal(0.0, 2.0)};
      out.push_back(TrackPoint{p, t += 5.0, {}});
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bqs;
  const int days = argc > 1 ? std::atoi(argv[1]) : 14;
  Rng rng(99);

  TrajectoryStoreOptions store_options;
  store_options.merge_tolerance = 25.0;
  TrajectoryStore store(store_options);

  BqsOptions options;
  options.epsilon = 10.0;
  FbqsCompressor compressor(options);

  std::size_t total_fixes = 0;
  std::size_t total_merged = 0;
  std::size_t total_stored = 0;
  for (int day = 0; day < days; ++day) {
    for (const bool evening : {false, true}) {
      const Trajectory trip =
          Commute(rng, evening, day * 86400.0 + (evening ? 64800.0 : 28800.0));
      total_fixes += trip.size();
      const CompressedTrajectory compressed = CompressAll(compressor, trip);
      const auto result = store.Append(compressed);
      if (!result.ok()) continue;  // degenerate trip: nothing to store
      total_merged += result.value().segments_merged;
      total_stored += result.value().segments_stored;
    }
  }

  std::printf("%d days x 2 commutes: %zu raw fixes\n", days, total_fixes);
  std::printf("after FBQS + merging: %zu live segments "
              "(%zu stored, %zu merged into visit counts)\n",
              store.segment_count(), total_stored, total_merged);
  std::printf("store footprint: %.2f KB (raw would be %.1f KB)\n",
              static_cast<double>(store.StorageBytes()) / 1000.0,
              static_cast<double>(total_fixes) * 12.0 / 1000.0);
  uint64_t max_visits = 0;
  for (const auto& seg : store.segments()) {
    if (seg.alive && seg.visits > max_visits) max_visits = seg.visits;
  }
  std::printf("most-travelled segment seen %llu times\n",
              static_cast<unsigned long long>(max_visits));

  // Ageing: a month later, old geometry can be coarser.
  const double before = store.StorageBytes();
  const std::size_t dropped = store.Age(40.0);
  std::printf("ageing at 40 m dropped %zu key points: %.2f KB -> %.2f KB\n",
              dropped, before / 1000.0, store.StorageBytes() / 1000.0);

  // Waypoint discovery + trip prediction (the paper's future-work
  // application). Stays must survive compression, so the discovery runs on
  // time-sensitive output; a dwell is inserted at each commute endpoint.
  WaypointOptions wp_options;
  wp_options.min_dwell_s = 1200.0;
  WaypointDiscovery discovery(wp_options);
  TimeSensitiveOptions ts_options;
  ts_options.epsilon = 15.0;
  ts_options.time_scale = 0.05;
  TimeSensitiveCompressor ts(ts_options);
  Rng rng2(99);
  for (int day = 0; day < days; ++day) {
    for (const bool evening : {false, true}) {
      Trajectory trip =
          Commute(rng2, evening, day * 86400.0 + (evening ? 64800.0 : 28800.0));
      // Dwell for 40 minutes at the destination before the next trip.
      Trajectory with_dwell = trip;
      const TrackPoint end = trip.back();
      for (int m = 1; m <= 40; ++m) {
        with_dwell.push_back(TrackPoint{
            end.pos + Vec2{rng2.Normal(0, 2), rng2.Normal(0, 2)},
            end.t + m * 60.0,
            {}});
      }
      discovery.Observe(CompressAll(ts, with_dwell));
    }
  }
  const auto places = discovery.Waypoints(2);
  std::printf("\nwaypoints discovered from compressed data: %zu\n",
              places.size());
  for (const auto& wp : places) {
    std::printf("  place %u at (%.0f, %.0f): %llu visits, %.1f h dwell\n",
                wp.id, wp.center.x, wp.center.y,
                static_cast<unsigned long long>(wp.visits),
                wp.total_dwell_s / 3600.0);
  }
  if (!places.empty()) {
    if (const auto next = discovery.PredictNext(places[0].id)) {
      std::printf("leaving place %u, next stop is place %u (p = %.2f)\n",
                  places[0].id, next->first, next->second);
    }
  }
  return 0;
}
