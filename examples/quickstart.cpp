// Quickstart: compress a small GPS stream with FBQS in a dozen lines.
//
//   $ ./quickstart
//
// Shows the core API: build a compressor with an error tolerance, push
// fixes as they arrive, collect the retained key points, and verify the
// guarantee.
#include <cstdio>

#include "core/fbqs_compressor.h"
#include "trajectory/deviation.h"

int main() {
  using namespace bqs;

  // A toy stream: drive east, turn north, with a little lateral noise.
  Trajectory stream;
  for (int i = 0; i <= 60; ++i) {
    const double along = i * 25.0;
    TrackPoint p;
    p.t = i * 10.0;
    p.pos = (i <= 30) ? Vec2{along, (i % 3) * 1.5}
                      : Vec2{750.0 + (i % 3) * 1.5, (i - 30) * 25.0};
    stream.push_back(p);
  }

  // 1. Configure: every compressed segment deviates at most 10 m.
  BqsOptions options;
  options.epsilon = 10.0;

  // 2. Stream the fixes through the compressor.
  FbqsCompressor compressor(options);
  std::vector<KeyPoint> keys;
  for (const TrackPoint& fix : stream) {
    compressor.Push(fix, &keys);  // emits key points as segments close
  }
  compressor.Finish(&keys);  // closes the final segment

  // 3. Use the result.
  std::printf("compressed %zu fixes to %zu key points (%.1f%%):\n",
              stream.size(), keys.size(),
              100.0 * static_cast<double>(keys.size()) /
                  static_cast<double>(stream.size()));
  for (const KeyPoint& k : keys) {
    std::printf("  kept fix #%llu at (%.1f, %.1f) t=%.0fs\n",
                static_cast<unsigned long long>(k.index), k.point.pos.x,
                k.point.pos.y, k.point.t);
  }

  // 4. The guarantee, verified against the original stream.
  CompressedTrajectory compressed;
  compressed.keys = keys;
  const DeviationReport report =
      EvaluateCompression(stream, compressed, options.metric);
  std::printf("max deviation: %.2f m (guaranteed <= %.1f m)\n",
              report.max_deviation, options.epsilon);
  return report.BoundedBy(options.epsilon) ? 0 : 1;
}
