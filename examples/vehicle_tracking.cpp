// Vehicle tracking: compare every online algorithm on a dashboard GPS
// trace, like the paper's comparative study (Fig. 7 / Table III).
//
//   $ ./vehicle_tracking [trips]
//
// Also demonstrates the offline API (Douglas-Peucker) and temporal
// reconstruction: querying where the car was at an arbitrary time from
// the compressed trajectory only.
#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "baselines/douglas_peucker.h"
#include "eval/algorithms.h"
#include "eval/table.h"
#include "simulation/vehicle.h"
#include "trajectory/deviation.h"
#include "trajectory/reconstruct.h"

int main(int argc, char** argv) {
  using namespace bqs;

  VehicleOptions car;
  car.num_trips = argc > 1 ? std::atoi(argv[1]) : 6;
  car.seed = 2015;
  const GeoTrace trace = GenerateVehicleTrace(car);
  const auto projected = ProjectTrace(trace, ProjectionKind::kUtm);
  if (!projected.ok()) {
    std::fprintf(stderr, "projection failed: %s\n",
                 projected.status().ToString().c_str());
    return 1;
  }
  const Trajectory& stream = projected.value();
  std::printf("%d trips, %zu fixes, %.0f km driven\n", car.num_trips,
              stream.size(), PathLength(stream) / 1000.0);

  const double epsilon = 15.0;  // metres; road-scale tolerance
  std::printf("error tolerance: %.0f m\n\n", epsilon);

  TablePrinter table({"algorithm", "kept", "rate", "max_dev_m", "runtime_ms"});
  for (const AlgorithmId id :
       {AlgorithmId::kBqs, AlgorithmId::kFbqs, AlgorithmId::kBdp,
        AlgorithmId::kBgd, AlgorithmId::kDp}) {
    AlgorithmConfig config;
    config.id = id;
    config.epsilon = epsilon;
    const RunOutput out = RunAlgorithm(config, stream);
    const DeviationReport report =
        EvaluateCompression(stream, out.compressed, config.metric);
    table.AddRow({std::string(AlgorithmName(id)),
                  FmtInt(static_cast<int64_t>(out.compressed.size())),
                  FmtPercent(out.compressed.CompressionRate(stream.size()), 2),
                  FmtDouble(report.max_deviation, 2),
                  FmtDouble(out.runtime_ms, 1)});
  }
  table.Print(std::cout);

  // Temporal reconstruction from the compressed trajectory.
  AlgorithmConfig config;
  config.id = AlgorithmId::kFbqs;
  config.epsilon = epsilon;
  const RunOutput fbqs = RunAlgorithm(config, stream);
  const double t_query = stream.front().t + Duration(stream) * 0.37;
  const auto where = ReconstructAt(fbqs.compressed, t_query);
  if (where.has_value()) {
    std::printf("\nreconstruction: at t=%.0fs the car was near "
                "(%.1f, %.1f) UTM, moving %.1f m/s\n",
                t_query, where->pos.x, where->pos.y,
                where->velocity.Norm());
  }
  return 0;
}
