// bqs_cli — command-line trajectory compression.
//
//   $ ./bqs_cli --algo fbqs --epsilon 10 in.csv out.csv
//   $ ./bqs_cli --demo                       # generate + compress a demo
//
// Reads a trajectory CSV ("x,y,t[,vx,vy]" with header, metres/seconds, as
// written by WriteTrajectoryCsv), compresses it with the chosen algorithm,
// writes the retained key points as CSV, and prints verified statistics.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "eval/algorithms.h"
#include "eval/metrics.h"
#include "simulation/datasets.h"
#include "trajectory/csv_io.h"
#include "trajectory/deviation.h"

namespace {

void Usage() {
  std::printf(
      "usage: bqs_cli [--algo bqs|fbqs|bdp|bgd|dp|dr|squish] "
      "[--epsilon METRES]\n"
      "               [--metric line|segment] [--buffer N] IN.csv OUT.csv\n"
      "       bqs_cli --demo   (compress a generated synthetic stream)\n");
}

bqs::Result<bqs::AlgorithmId> ParseAlgo(const std::string& name) {
  using bqs::AlgorithmId;
  if (name == "bqs") return AlgorithmId::kBqs;
  if (name == "fbqs") return AlgorithmId::kFbqs;
  if (name == "bdp") return AlgorithmId::kBdp;
  if (name == "bgd") return AlgorithmId::kBgd;
  if (name == "dp") return AlgorithmId::kDp;
  if (name == "dr") return AlgorithmId::kDr;
  if (name == "squish") return AlgorithmId::kSquishE;
  return bqs::Status::InvalidArgument("unknown algorithm: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bqs;

  AlgorithmConfig config;
  config.id = AlgorithmId::kFbqs;
  config.epsilon = 10.0;
  std::string in_path;
  std::string out_path;
  bool demo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--algo") {
      const char* v = next();
      if (!v) break;
      const auto algo = ParseAlgo(v);
      if (!algo.ok()) {
        std::fprintf(stderr, "%s\n", algo.status().ToString().c_str());
        return 2;
      }
      config.id = algo.value();
    } else if (arg == "--epsilon") {
      const char* v = next();
      if (!v) break;
      config.epsilon = std::atof(v);
    } else if (arg == "--metric") {
      const char* v = next();
      if (!v) break;
      config.metric = std::strcmp(v, "segment") == 0
                          ? DistanceMetric::kPointToSegment
                          : DistanceMetric::kPointToLine;
    } else if (arg == "--buffer") {
      const char* v = next();
      if (!v) break;
      config.buffer_size = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (in_path.empty()) {
      in_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    }
  }
  if (config.epsilon <= 0.0) {
    std::fprintf(stderr, "epsilon must be positive\n");
    return 2;
  }

  Trajectory stream;
  if (demo) {
    stream = BuildSyntheticDataset(0.2).stream;
    in_path = "(generated synthetic stream)";
    if (out_path.empty()) out_path = "compressed_demo.csv";
  } else {
    if (in_path.empty() || out_path.empty()) {
      Usage();
      return 2;
    }
    auto read = ReadTrajectoryCsv(in_path);
    if (!read.ok()) {
      std::fprintf(stderr, "read failed: %s\n",
                   read.status().ToString().c_str());
      return 1;
    }
    stream = std::move(read).value();
  }
  if (stream.size() < 2) {
    std::fprintf(stderr, "input has fewer than 2 points\n");
    return 1;
  }

  const RunOutput out = RunAlgorithm(config, stream);
  const CompressionQuality quality = MeasureQuality(
      stream, out.compressed, config.epsilon, config.metric);

  if (const Status st = WriteCompressedCsv(out.compressed, out_path);
      !st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("input:       %s (%zu points)\n", in_path.c_str(),
              stream.size());
  std::printf("algorithm:   %s, epsilon %.2f m (%s metric)\n",
              std::string(AlgorithmName(config.id)).c_str(), config.epsilon,
              config.metric == DistanceMetric::kPointToLine ? "line"
                                                            : "segment");
  std::printf("kept:        %zu points (%.2f%%)\n", quality.points_out,
              100.0 * quality.compression_rate);
  std::printf("max error:   %.3f m (%s)\n", quality.max_deviation,
              quality.error_bounded ? "within bound"
                                    : "EXCEEDS BOUND (metric differs?)");
  std::printf("runtime:     %.2f ms\n", out.runtime_ms);
  std::printf("output:      %s\n", out_path.c_str());
  return 0;
}
