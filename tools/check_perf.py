#!/usr/bin/env python3
"""Perf-smoke gate: compares a fresh BENCH_*.json against its committed
baseline and fails on correctness or gross perf regressions. Handles both
report families, dispatched on the document's `schema` field:

  bqs-bench-throughput-*  (default when no schema field is present)
  ------------------------------------------------------------------
  Checks, in order of severity:
  1. byte-identity: the fresh run's `all_byte_identical` must be true (the
     bench itself also exits non-zero on divergence; this is a belt).
  2. error bound: every algorithm row must report error_bounded == true.
  3. coverage: every (stream, algorithm) row in the baseline must also be
     present in the fresh run — silently dropping a gated row is itself a
     failure.
  4. throughput: fresh points_per_sec must be at least TOLERANCE x the
     baseline's for every row. Because the committed baseline was measured
     on a different machine than the CI runner, each stream's rates are
     first normalized by that stream's CALIBRATION row (BQS_bruteforce,
     the seed reference implementation): machine speed cancels out of the
     fresh/baseline ratio, so the gate measures code, not hardware. A
     regression confined to the calibration row itself is the seed
     reference getting slower — reported, not gated. Pass --no-normalize
     for raw same-machine comparisons. The default tolerance (0.70, i.e.
     "no more than 30% below baseline") absorbs residual runner noise
     while catching order-of-magnitude slips like a transcendental leaking
     back into the kernel hot path.

  bqs-bench-micro-*
  ------------------------------------------------------------------
  Correctness-only gate over the micro report (ns/op numbers are too
  machine-sensitive to gate cross-machine):
  1. checksums: `all_checksums_match` and
     `fast_kernel_transcendental_free` must be true.
  2. coverage: every (stream, algorithm, kernel) push row in the
     baseline must be present in the fresh run.
  3. guard-band fallbacks: every fast-kernel row on the empirical
     stream must report kernel_fallbacks == 0 — the guard band exists
     for adversarial geometry, and real-data geometry landing in it
     means the band (or the kernel) regressed.
  4. vector coverage: on the empirical stream's fast-kernel BQS row,
     the fraction of batch points decided by a vector lane
     ((lanes4 + lanes2) / total) must be >= VECTOR_COVERAGE_FLOOR,
     whenever the fresh run's `simd_tier` is not "scalar". Catches the
     dispatch (or the screen gating) silently decaying to the scalar
     path while byte-identity keeps all other gates green.

  bqs-bench-fleet-v2
  ------------------------------------------------------------------
  Same shape, fleet-flavoured:
  1. byte-identity: `all_byte_identical` must be true (per-device outputs
     vs the sequential CompressAll reference).
  2. coverage: every (algorithm, config) engine row in the baseline must
     be present in the fresh run, and so must each algorithm's sequential
     reference row.
  3. ingest throughput: each engine row's points_per_sec, normalized by
     that algorithm's sequential row (the machine-speed yardstick: it runs
     the identical kernel with zero service overhead), must be at least
     TOLERANCE x the baseline's equally-normalized rate. The sequential
     row itself is the calibration and is reported, not gated. Note the
     bench binary separately enforces the absolute floor (shards<=1 >=
     min-seq-ratio x sequential); this gate catches relative regressions
     of any row against the committed baseline.
  4. overload scenarios: every scenario row in the baseline's `overload`
     array must be present in the fresh run (coverage), and each fresh row
     must hold the limits it carries itself — p99_ms <= p99_limit_ms,
     shed_rate <= shed_rate_limit, invariant_ok true. Limits are
     self-describing (written by the bench into each row) so the gate
     needs no hardcoded thresholds and stays meaningful across machines:
     p99 limits are intentionally generous absolute bounds, shed-rate
     limits are workload properties, and the accounting invariant is
     machine-independent. The bench binary enforces the same limits at
     run time; this re-gate catches a candidate JSON produced by a
     tampered or older binary.

  bqs-bench-wal-v1
  ------------------------------------------------------------------
  Durability-subsystem gate (bench_wal). Append/recover rates are
  reported but never gated — fsync throughput measures the runner's
  disk, not the code. What IS gated is machine-independent:
  1. exactness: `all_recovered_exact` must be true, and every policy
     row must report recovered_exact and recovery_clean — a WAL that
     benches fast but drops acked data is not a WAL.
  2. coverage: every policy row in the baseline must be present.
  3. density: the workload is derived from a fixed seed, so
     bytes_per_point is deterministic; a fresh value more than 5% above
     the baseline means the delta+zigzag+varint codec got less dense.
     (Same-scale runs only; the scale check catches the rest.)
  4. workload identity: each row's `points` must equal the baseline's —
     if the generator drifted, the density gate would be comparing
     different workloads and silently pass.

  bqs-bench-compaction-v1
  ------------------------------------------------------------------
  Compaction-pipeline gate (bench_compaction). Drain/recover rates and
  query latencies are reported but never gated (disk + machine). Gated,
  all machine-independent for the seeded workload:
  1. exactness: `recovery_exact`, `recovery_clean` and `queries_match`
     must all be true — RecoverStore reproduced the acked prefix bit
     for bit and every block-pruned range query agreed with the
     brute-force scan.
  2. workload identity: `points` must equal the baseline's.
  3. density: block `bytes_per_point` no more than 5% above baseline —
     the columnar delta codec got less dense.
  4. pruning power: `avg_decoded_block_fraction` no more than 10% above
     baseline — the bbox/grid prune decayed toward decode-everything.

Usage: check_perf.py <fresh.json> <baseline.json> [--tolerance 0.70]
                     [--no-normalize]
Exit codes: 0 ok, 1 regression/divergence, 2 usage or parse error.
"""

import argparse
import json
import sys

CALIBRATION_ALGORITHM = "BQS_bruteforce"
FLEET_SCHEMA_PREFIX = "bqs-bench-fleet"
MICRO_SCHEMA_PREFIX = "bqs-bench-micro"
WAL_SCHEMA_PREFIX = "bqs-bench-wal"
COMPACTION_SCHEMA_PREFIX = "bqs-bench-compaction"
# Ceiling on fresh/baseline bytes_per_point: the workload is seeded, so
# density is deterministic and 5% headroom is purely for format evolution
# landing together with a refreshed baseline.
WAL_DENSITY_SLACK = 1.05
# Ceiling on fresh/baseline avg_decoded_block_fraction: chunking and grid
# sizing are deterministic, so pruning power is too; 10% headroom covers
# block-layout evolution landing with a refreshed baseline.
COMPACTION_PRUNE_SLACK = 1.10
SEQUENTIAL_CONFIG = "sequential"
# Empirical-stream floor on the fraction of batch points decided by a
# vector lane (measured ~0.84 on the paper's merged workload; the floor
# leaves room for dataset-scale wiggle, not for a path regression).
VECTOR_COVERAGE_FLOOR = 0.75


def throughput_rates(doc):
    """{(stream, algorithm): row} for every measured algorithm row."""
    out = {}
    for stream in doc.get("streams", []):
        for algo in stream.get("algorithms", []):
            out[(stream["name"], algo["name"])] = algo
    return out


def fleet_rates(doc):
    """{(algorithm, config): row}, with the sequential reference included
    as config 'sequential'."""
    out = {}
    for algo in doc.get("algorithms", []):
        name = algo["name"]
        out[(name, SEQUENTIAL_CONFIG)] = {
            "points_per_sec": algo.get("sequential_points_per_sec", 0.0),
        }
        for run in algo.get("runs", []):
            out[(name, run["config"])] = run
    return out


def check_scale(fresh, baseline, failures):
    # Rates are only comparable at the same dataset scale: the BQS-vs-
    # reference ratio is scale-dependent (exact-resolve cost grows
    # superlinearly with segment length), so normalization cannot cancel a
    # scale shift.
    fresh_scale = fresh.get("scale", 0.0)
    base_scale = baseline.get("scale", 0.0)
    if abs(fresh_scale - base_scale) > 1e-9:
        failures.append(
            f"scale mismatch: fresh run at {fresh_scale}, baseline at "
            f"{base_scale} — rerun the bench with --scale {base_scale}")


def gate_rows(fresh_rows, base_rows, calibration, calibration_keys,
              tolerance, failures):
    """Shared row-by-row comparison: coverage, then normalized ratios.
    `calibration` maps a group key (stream / algorithm name) to the
    machine-speed factor; rows whose key is in `calibration_keys` are the
    yardstick and are reported but never gated."""
    compared = 0
    for key, base_row in sorted(base_rows.items()):
        group, _ = key
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            failures.append(f"{key}: present in baseline but missing from "
                            "the fresh run (gated row dropped?)")
            continue
        base_pps = base_row.get("points_per_sec", 0.0)
        fresh_pps = fresh_row.get("points_per_sec", 0.0)
        if base_pps <= 0:
            continue
        ratio = fresh_pps / base_pps
        cal = calibration.get(group)
        gated = True
        if cal is not None:
            if key in calibration_keys:
                gated = False  # the yardstick cannot gate itself
            else:
                ratio /= cal
        compared += int(gated)
        ok = not gated or ratio >= tolerance
        status = "ok" if ok else "REGRESSION"
        if not gated:
            status = "calibration"
        print(f"{key[0]:>18s} / {key[1]:<16s} "
              f"{fresh_pps / 1e6:8.2f} M pts/s vs baseline "
              f"{base_pps / 1e6:8.2f} ({ratio:5.2f}x"
              f"{' norm' if cal is not None and gated else ''})  {status}")
        if not ok:
            failures.append(
                f"{key}: normalized ratio {ratio:.2f} below tolerance "
                f"{tolerance:.2f} (fresh {fresh_pps:.0f} pts/s, "
                f"baseline {base_pps:.0f})")
    return compared


def check_throughput(fresh, baseline, args, failures):
    if not fresh.get("all_byte_identical", False):
        failures.append("fresh run is not byte-identical across kernels")

    fresh_rows = throughput_rates(fresh)
    base_rows = throughput_rates(baseline)

    for key, row in sorted(fresh_rows.items()):
        if not row.get("error_bounded", True):
            failures.append(f"{key}: epsilon error bound violated")

    # Per-stream machine-speed calibration from the seed-reference row. A
    # stream without a usable calibration row cannot be gated meaningfully
    # across machines, so that is itself a failure (never a silent
    # fall-through to raw cross-machine ratios).
    calibration = {}
    calibration_keys = set()
    if not args.no_normalize:
        for (stream, algo), base_row in base_rows.items():
            if algo != CALIBRATION_ALGORITHM:
                continue
            calibration_keys.add((stream, algo))
            fresh_row = fresh_rows.get((stream, algo))
            base_pps = base_row.get("points_per_sec", 0.0)
            if fresh_row and base_pps > 0:
                cal = fresh_row.get("points_per_sec", 0.0) / base_pps
                if cal > 0:
                    calibration[stream] = cal
        for stream in {s for (s, _) in base_rows}:
            if stream not in calibration:
                failures.append(
                    f"stream '{stream}': no usable {CALIBRATION_ALGORITHM} "
                    "calibration row in both files; cannot normalize "
                    "(use --no-normalize only for same-machine runs)")

    return gate_rows(fresh_rows, base_rows, calibration, calibration_keys,
                     args.tolerance, failures)


def check_overload(fresh, baseline, failures):
    """Coverage + self-limit gate over the fleet report's `overload` rows.
    Returns the number of gated rows (counted into `compared`)."""
    fresh_rows = {row["scenario"]: row for row in fresh.get("overload", [])}
    base_rows = {row["scenario"]: row for row in baseline.get("overload", [])}
    compared = 0
    for name, _ in sorted(base_rows.items()):
        row = fresh_rows.get(name)
        if row is None:
            failures.append(f"overload scenario '{name}': present in "
                            "baseline but missing from the fresh run")
            continue
        compared += 1
        p99 = row.get("p99_ms", float("inf"))
        p99_limit = row.get("p99_limit_ms", 0.0)
        shed_rate = row.get("shed_rate", float("inf"))
        shed_limit = row.get("shed_rate_limit", 0.0)
        invariant_ok = row.get("invariant_ok", False)
        ok = p99 <= p99_limit and shed_rate <= shed_limit and invariant_ok
        print(f"{'overload':>18s} / {name:<16s} "
              f"p99 {p99:7.3f}/{p99_limit:.0f} ms  "
              f"shed {shed_rate:5.3f}/{shed_limit:.2f}  "
              f"{'ok' if ok else 'LIMIT BROKEN'}")
        if p99 > p99_limit:
            failures.append(f"overload '{name}': p99 ingest latency "
                            f"{p99:.3f} ms over its limit {p99_limit:.3f}")
        if shed_rate > shed_limit:
            failures.append(f"overload '{name}': shed rate {shed_rate:.3f} "
                            f"over its limit {shed_limit:.3f}")
        if not invariant_ok:
            failures.append(f"overload '{name}': record accounting broken "
                            "(ingested + shed + dropped != fed)")
    return compared


def check_micro(fresh, baseline, failures):
    """Correctness gate over the micro report's push rows. Returns the
    number of gated rows."""
    if not fresh.get("all_checksums_match", False):
        failures.append("micro: fast-kernel checksums diverged")
    if not fresh.get("fast_kernel_transcendental_free", False):
        failures.append("micro: fast kernel performed unaccounted "
                        "transcendental calls")

    def rows(doc):
        return {(r["stream"], r["algorithm"], r["kernel"]): r
                for r in doc.get("push", [])}

    fresh_rows = rows(fresh)
    base_rows = rows(baseline)
    vector_tier = fresh.get("simd_tier", "scalar") != "scalar"
    compared = 0
    for key in sorted(base_rows):
        row = fresh_rows.get(key)
        if row is None:
            failures.append(f"micro {key}: present in baseline but missing "
                            "from the fresh run")
            continue
        compared += 1
        stream, algorithm, kernel = key
        fallbacks = row.get("kernel_fallbacks", 0)
        status = "ok"
        if kernel == "fast" and stream == "empirical" and fallbacks != 0:
            failures.append(f"micro {key}: {fallbacks} guard-band fallbacks "
                            "on the empirical stream (expected 0)")
            status = "FALLBACKS"
        coverage_note = ""
        if kernel == "fast" and stream == "empirical" and algorithm == "BQS":
            lanes = (row.get("batch_lanes4_points", 0) +
                     row.get("batch_lanes2_points", 0))
            total = lanes + row.get("batch_scalar_points", 0)
            coverage = lanes / total if total else 0.0
            coverage_note = f"  vector {coverage:5.3f}"
            if vector_tier and coverage < VECTOR_COVERAGE_FLOOR:
                failures.append(
                    f"micro {key}: vector coverage {coverage:.3f} below "
                    f"floor {VECTOR_COVERAGE_FLOOR:.2f} (lanes {lanes}, "
                    f"total {total}) — batch screen decayed to scalar")
                status = "COVERAGE"
        print(f"{key[0]:>18s} / {algorithm:<5s}/{kernel:<9s} "
              f"fallbacks {fallbacks:4d}{coverage_note}  {status}")
    return compared


def check_wal(fresh, baseline, failures):
    """Exactness + density gate over the WAL report's policy rows.
    Returns the number of gated rows."""
    if not fresh.get("all_recovered_exact", False):
        failures.append("wal: a policy's recovery was not bit-exact")

    fresh_rows = {row["name"]: row for row in fresh.get("policies", [])}
    base_rows = {row["name"]: row for row in baseline.get("policies", [])}
    compared = 0
    for name, base_row in sorted(base_rows.items()):
        row = fresh_rows.get(name)
        if row is None:
            failures.append(f"wal policy '{name}': present in baseline but "
                            "missing from the fresh run")
            continue
        compared += 1
        status = "ok"
        if not row.get("recovered_exact", False):
            failures.append(f"wal policy '{name}': recovery not bit-exact")
            status = "NOT EXACT"
        if not row.get("recovery_clean", False):
            failures.append(f"wal policy '{name}': recovery report not "
                            "clean (acked data was lost)")
            status = "NOT CLEAN"
        points = row.get("points", 0)
        base_points = base_row.get("points", 0)
        if points != base_points:
            failures.append(f"wal policy '{name}': workload drifted "
                            f"({points} points vs baseline {base_points}) — "
                            "density comparison would be meaningless")
            status = "DRIFT"
        density = row.get("bytes_per_point", 0.0)
        base_density = base_row.get("bytes_per_point", 0.0)
        if base_density > 0 and density > base_density * WAL_DENSITY_SLACK:
            failures.append(f"wal policy '{name}': bytes_per_point "
                            f"{density:.2f} above baseline {base_density:.2f}"
                            f" x {WAL_DENSITY_SLACK} — codec got less dense")
            status = "DENSITY"
        print(f"{'wal':>18s} / {name:<18s} "
              f"append {row.get('append_points_per_sec', 0.0) / 1e6:8.2f} "
              f"M pts/s  recover "
              f"{row.get('recover_points_per_sec', 0.0) / 1e6:8.2f} M pts/s"
              f"  {density:5.2f} B/pt  {status}")
    return compared


def check_compaction(fresh, baseline, failures):
    """Exactness + density + pruning gate over the compaction report.
    Returns the number of gated fields."""
    compared = 0
    status = "ok"
    for flag in ("recovery_exact", "recovery_clean", "queries_match"):
        compared += 1
        if not fresh.get(flag, False):
            failures.append(f"compaction: {flag} is false — the pipeline "
                            "perturbed acked data")
            status = "NOT EXACT"

    points = fresh.get("points", 0)
    base_points = baseline.get("points", 0)
    compared += 1
    if points != base_points:
        failures.append(f"compaction: workload drifted ({points} points vs "
                        f"baseline {base_points}) — density and pruning "
                        "comparisons would be meaningless")
        status = "DRIFT"

    density = fresh.get("bytes_per_point", 0.0)
    base_density = baseline.get("bytes_per_point", 0.0)
    compared += 1
    if base_density > 0 and density > base_density * WAL_DENSITY_SLACK:
        failures.append(f"compaction: bytes_per_point {density:.2f} above "
                        f"baseline {base_density:.2f} x {WAL_DENSITY_SLACK} "
                        "— columnar codec got less dense")
        status = "DENSITY"

    frac = fresh.get("avg_decoded_block_fraction", 1.0)
    base_frac = baseline.get("avg_decoded_block_fraction", 0.0)
    compared += 1
    if base_frac > 0 and frac > base_frac * COMPACTION_PRUNE_SLACK:
        failures.append(f"compaction: avg_decoded_block_fraction {frac:.3f} "
                        f"above baseline {base_frac:.3f} x "
                        f"{COMPACTION_PRUNE_SLACK} — bbox pruning decayed")
        status = "PRUNING"

    print(f"{'compaction':>18s} / {'pipeline':<18s} "
          f"compact {fresh.get('compact_points_per_sec', 0.0) / 1e6:8.2f} "
          f"M pts/s  {density:5.2f} B/pt  "
          f"decoded {frac:5.3f}  {status}")
    return compared


def check_fleet(fresh, baseline, args, failures):
    if not fresh.get("all_byte_identical", False):
        failures.append(
            "fresh run is not byte-identical to the sequential reference")

    fresh_rows = fleet_rates(fresh)
    base_rows = fleet_rates(baseline)

    # Per-algorithm machine-speed calibration from the sequential row: the
    # exact kernel the fleet rows run, minus every service-layer cost.
    calibration = {}
    calibration_keys = set()
    if not args.no_normalize:
        for (algo, config), base_row in base_rows.items():
            if config != SEQUENTIAL_CONFIG:
                continue
            calibration_keys.add((algo, config))
            fresh_row = fresh_rows.get((algo, config))
            base_pps = base_row.get("points_per_sec", 0.0)
            if fresh_row and base_pps > 0:
                cal = fresh_row.get("points_per_sec", 0.0) / base_pps
                if cal > 0:
                    calibration[algo] = cal
        for algo in {a for (a, _) in base_rows}:
            if algo not in calibration:
                failures.append(
                    f"algorithm '{algo}': no usable sequential calibration "
                    "row in both files; cannot normalize (use "
                    "--no-normalize only for same-machine runs)")

    compared = gate_rows(fresh_rows, base_rows, calibration,
                         calibration_keys, args.tolerance, failures)
    return compared + check_overload(fresh, baseline, failures)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.70)
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw points_per_sec without the "
                             "calibration-row machine-speed correction")
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot load inputs: {e}", file=sys.stderr)
        return 2

    fresh_schema = fresh.get("schema", "")
    base_schema = baseline.get("schema", "")
    if fresh_schema != base_schema:
        print(f"check_perf: schema mismatch: fresh '{fresh_schema}' vs "
              f"baseline '{base_schema}'", file=sys.stderr)
        return 2

    failures = []
    check_scale(fresh, baseline, failures)

    if fresh_schema.startswith(FLEET_SCHEMA_PREFIX):
        compared = check_fleet(fresh, baseline, args, failures)
    elif fresh_schema.startswith(MICRO_SCHEMA_PREFIX):
        compared = check_micro(fresh, baseline, failures)
    elif fresh_schema.startswith(WAL_SCHEMA_PREFIX):
        compared = check_wal(fresh, baseline, failures)
    elif fresh_schema.startswith(COMPACTION_SCHEMA_PREFIX):
        compared = check_compaction(fresh, baseline, failures)
    else:
        compared = check_throughput(fresh, baseline, args, failures)

    if compared == 0:
        failures.append("no comparable rows found")

    if failures:
        print("\ncheck_perf FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\ncheck_perf OK: {compared} rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
