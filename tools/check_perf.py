#!/usr/bin/env python3
"""Perf-smoke gate: compares a fresh BENCH_throughput.json against the
committed baseline and fails on correctness or gross perf regressions.

Checks, in order of severity:
  1. byte-identity: the fresh run's `all_byte_identical` must be true (the
     bench itself also exits non-zero on divergence; this is a belt).
  2. error bound: every algorithm row must report error_bounded == true.
  3. coverage: every (stream, algorithm) row in the baseline must also be
     present in the fresh run — silently dropping a gated row is itself a
     failure.
  4. throughput: fresh points_per_sec must be at least TOLERANCE x the
     baseline's for every row. Because the committed baseline was measured
     on a different machine than the CI runner, each stream's rates are
     first normalized by that stream's CALIBRATION row (BQS_bruteforce,
     the seed reference implementation): machine speed cancels out of the
     fresh/baseline ratio, so the gate measures code, not hardware. A
     regression confined to the calibration row itself is the seed
     reference getting slower — reported, not gated. Pass --no-normalize
     for raw same-machine comparisons. The default tolerance (0.70, i.e.
     "no more than 30% below baseline") absorbs residual runner noise
     while catching order-of-magnitude slips like a transcendental leaking
     back into the kernel hot path.

Usage: check_perf.py <fresh.json> <baseline.json> [--tolerance 0.70]
                     [--no-normalize]
Exit codes: 0 ok, 1 regression/divergence, 2 usage or parse error.
"""

import argparse
import json
import sys

CALIBRATION_ALGORITHM = "BQS_bruteforce"


def rates(doc):
    """{(stream, algorithm): row} for every measured algorithm row."""
    out = {}
    for stream in doc.get("streams", []):
        for algo in stream.get("algorithms", []):
            out[(stream["name"], algo["name"])] = algo
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.70)
    parser.add_argument("--no-normalize", action="store_true",
                        help="compare raw points_per_sec without the "
                             "calibration-row machine-speed correction")
    args = parser.parse_args()

    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot load inputs: {e}", file=sys.stderr)
        return 2

    failures = []

    # Rates are only comparable at the same dataset scale: the BQS-vs-
    # reference ratio is scale-dependent (exact-resolve cost grows
    # superlinearly with segment length), so normalization cannot cancel a
    # scale shift.
    fresh_scale = fresh.get("scale", 0.0)
    base_scale = baseline.get("scale", 0.0)
    if abs(fresh_scale - base_scale) > 1e-9:
        failures.append(
            f"scale mismatch: fresh run at {fresh_scale}, baseline at "
            f"{base_scale} — rerun the bench with --scale {base_scale}")

    if not fresh.get("all_byte_identical", False):
        failures.append("fresh run is not byte-identical across kernels")

    fresh_rows = rates(fresh)
    base_rows = rates(baseline)

    for key, row in sorted(fresh_rows.items()):
        if not row.get("error_bounded", True):
            failures.append(f"{key}: epsilon error bound violated")

    # Per-stream machine-speed calibration from the seed-reference row. A
    # stream without a usable calibration row cannot be gated meaningfully
    # across machines, so that is itself a failure (never a silent
    # fall-through to raw cross-machine ratios).
    calibration = {}
    if not args.no_normalize:
        for (stream, algo), base_row in base_rows.items():
            if algo != CALIBRATION_ALGORITHM:
                continue
            fresh_row = fresh_rows.get((stream, algo))
            base_pps = base_row.get("points_per_sec", 0.0)
            if fresh_row and base_pps > 0:
                cal = fresh_row.get("points_per_sec", 0.0) / base_pps
                if cal > 0:
                    calibration[stream] = cal
        for stream in {s for (s, _) in base_rows}:
            if stream not in calibration:
                failures.append(
                    f"stream '{stream}': no usable {CALIBRATION_ALGORITHM} "
                    "calibration row in both files; cannot normalize "
                    "(use --no-normalize only for same-machine runs)")

    compared = 0
    for key, base_row in sorted(base_rows.items()):
        stream, algo = key
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            failures.append(f"{key}: present in baseline but missing from "
                            "the fresh run (gated row dropped?)")
            continue
        base_pps = base_row.get("points_per_sec", 0.0)
        fresh_pps = fresh_row.get("points_per_sec", 0.0)
        if base_pps <= 0:
            continue
        ratio = fresh_pps / base_pps
        cal = calibration.get(stream)
        gated = True
        if cal is not None:
            if algo == CALIBRATION_ALGORITHM:
                gated = False  # the yardstick cannot gate itself
            else:
                ratio /= cal
        compared += int(gated)
        ok = not gated or ratio >= args.tolerance
        status = "ok" if ok else "REGRESSION"
        if not gated:
            status = "calibration"
        print(f"{stream:>18s} / {algo:<16s} "
              f"{fresh_pps / 1e6:8.2f} M pts/s vs baseline "
              f"{base_pps / 1e6:8.2f} ({ratio:5.2f}x"
              f"{' norm' if cal is not None and gated else ''})  {status}")
        if not ok:
            failures.append(
                f"{key}: normalized ratio {ratio:.2f} below tolerance "
                f"{args.tolerance:.2f} (fresh {fresh_pps:.0f} pts/s, "
                f"baseline {base_pps:.0f})")

    if compared == 0:
        failures.append("no comparable (stream, algorithm) rows found")

    if failures:
        print("\ncheck_perf FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\ncheck_perf OK: {compared} rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
