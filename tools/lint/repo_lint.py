#!/usr/bin/env python3
"""Repo-specific lint for the BQS codebase.

Three rules, all cheap textual checks that encode invariants the compiler
cannot see:

  hot-path-transcendental
      The PR 4 kernel made the steady-state decision path transcendental-
      free; every remaining atan2/sqrt/sin/cos/fmod in a hot-path TU must
      be *accounted* — either an ``ops::Count*`` call appears within the
      three preceding lines (the op-counter idiom used throughout
      src/core), or the site is listed in transcendental_allowlist.txt
      with a justification. A new unaccounted call is exactly the kind of
      silent regression the paper's O(1)-per-point claim forbids.

  service-alloc-budget
      src/service steady-state code pools everything (BlockArena,
      session pool, SpscRing) and synchronises through the annotated
      Mutex wrapper. Naked ``new`` / ``malloc`` / ``std::mutex`` tokens
      are budgeted per file in service_alloc_budget.txt (today: zero).
      Raising a budget is allowed but must be done consciously, in the
      committed budget file, where a reviewer sees it.

  include-hygiene
      Quoted includes must follow the layer DAG that CMake encodes as
      target link dependencies. A lower layer including a higher one
      (e.g. geometry -> core) compiles fine — include paths are flat —
      but inverts the architecture; this rule catches it at lint time.

  fault-injection-containment
      common/fault_injector.h is a *test harness*: deterministic fault
      schedules the overload tests and fuzzers drive through
      FleetEngineOptions::fault_injector and
      KeyPointWalOptions::fault_injector. Its hooks are allowed in
      exactly the files that define and consume those options
      (FAULT_INJECTION_ALLOWLIST); any other src/ file naming
      FaultInjector/FaultSite or including the header is a violation.
      Tests, fuzzers and benches live outside src/ and are unrestricted.
      This keeps injected-fault surface area auditable: a fault hook
      quietly sprouting in a compressor kernel would otherwise be
      invisible until it misfired in production.

  file-io-containment
      Durable state has exactly one home: src/storage (the WAL and its
      recovery path), where every write is CRC-framed, fsync-gated and
      crash-sweep tested. Any other src/ file opening file descriptors
      or streams is either a debugging leftover or a second persistence
      path that dodges those guarantees. The two historical exceptions
      are pinned in FILE_IO_ALLOWLIST: csv_io.cc (the documented CSV
      import/export boundary) and eval/table.cc (report emission, not
      state). Tests/benches/fuzzers live outside src/ and may do I/O.

  intrinsics-containment
      The SIMD dispatch layer (common/simd.h) promises the rest of the
      repo sees only enums, POD structs and function pointers; the
      intrinsics live in exactly two translation units, compiled with
      the right -m flags and reached only through the runtime-dispatch
      table (INTRINSICS_ALLOWLIST). Any other src/ file including an
      x86 intrinsics header or naming an ``_mm*`` / ``__m128`` /
      ``__m256`` token breaks that containment: it either compiles a
      vector instruction into a TU that may run on a CPU without the
      feature, or smuggles a second, unlinted copy of a kernel past the
      byte-identity audit trail in simd_lanes.h.

Exit codes: 0 clean, 1 violations found, 2 configuration/usage error.
"""

import argparse
import fnmatch
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule configuration
# ---------------------------------------------------------------------------

# TUs on the per-point decision path. src/geometry/angle.cc is included
# because NormalizeAngle* sits under the quadrant maintenance path.
HOT_PATH_GLOBS = (
    "src/core/*.cc",
    "src/core/*.h",
    "src/service/*.cc",
    "src/service/*.h",
    "src/geometry/angle.cc",
)

TRANSCENDENTAL_RE = re.compile(
    r"\b(?:std::)?(?:atan2|sqrt|fmod|sin|cos|sinh|cosh|tan|asin|acos|atan|hypot|pow|exp|log)f?\s*\("
)

# An ops::Count* call on the same line or within this many preceding lines
# marks a transcendental site as accounted.
OP_COUNTER_RE = re.compile(r"\bops::Count\w*\s*\(")
OP_COUNTER_WINDOW = 3

# Layer DAG, mirroring the bqs_add_layer DEPS edges in CMakeLists.txt.
# Each entry lists the layers whose headers that layer may include.
LAYER_DEPS = {
    "common": set(),
    "geometry": {"common"},
    "geo": {"geometry"},
    "trajectory": {"geo"},
    "core": {"trajectory"},
    "baselines": {"trajectory"},
    "simulation": {"trajectory"},
    "storage": {"baselines"},
    "eval": {"core", "baselines", "simulation"},
    "service": {"eval", "storage"},
}

# Tokens budgeted by service_alloc_budget.txt. Order matters only for
# stable output. ``new`` is matched as a whole word so NewWindow/renew
# never trip it.
BUDGET_TOKENS = {
    "new": re.compile(r"\bnew\b"),
    "malloc": re.compile(r"\bmalloc\s*\("),
    "std::mutex": re.compile(r"\bstd::mutex\b"),
}

SOURCE_EXTENSIONS = (".h", ".cc")

# The only src/ files that may name the fault-injection harness: the
# harness itself plus the components that expose an injection option
# (the fleet engine, the key-point WAL writer, and the compaction
# pipeline with its manifest I/O).
FAULT_INJECTION_ALLOWLIST = {
    "src/common/fault_injector.h",
    "src/service/fleet_engine.h",
    "src/service/fleet_engine.cc",
    "src/storage/compaction.h",
    "src/storage/compaction.cc",
    "src/storage/keypoint_wal.h",
    "src/storage/keypoint_wal.cc",
    "src/storage/manifest.h",
    "src/storage/manifest.cc",
}
FAULT_TOKEN_RE = re.compile(r"\b(?:FaultInjector|FaultSite)\b")
FAULT_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s+"common/fault_injector\.h"')

# File I/O belongs to the storage layer; these two files are the pinned
# exceptions (import/export boundary and report emission).
FILE_IO_ALLOWLIST = {
    "src/trajectory/csv_io.cc",
    "src/eval/table.cc",
}
FILE_IO_LAYER_PREFIX = "src/storage/"
FILE_IO_TOKEN_RE = re.compile(
    r"\b(?:std::(?:o|i)?fstream|std::filesystem|fopen|freopen|fsync"
    r"|fdatasync)\b|::(?:open|creat|write|pwrite)\s*\(")

# The only src/ files that may touch x86 SIMD intrinsics: the two kernel
# tiers behind the runtime-dispatch table in common/simd.h.
INTRINSICS_ALLOWLIST = {
    "src/common/simd_avx2.cc",
    "src/common/simd_sse2.cc",
}
INTRINSIC_TOKEN_RE = re.compile(r"\b(?:_mm\w*|__m128[di]?|__m256[di]?)\b")
INTRINSIC_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s+<"
    r"(?:immintrin|emmintrin|xmmintrin|smmintrin|tmmintrin|pmmintrin"
    r"|nmmintrin|wmmintrin|ammintrin|x86intrin)\.h>")


def layer_closure():
    """Transitive closure of LAYER_DEPS: layer -> set of includable layers."""
    closure = {}

    def visit(layer):
        if layer in closure:
            return closure[layer]
        allowed = {layer}
        for dep in LAYER_DEPS[layer]:
            allowed |= visit(dep)
        closure[layer] = allowed
        return allowed

    for layer in LAYER_DEPS:
        visit(layer)
    return closure


# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Returns text with comments and string/char literals blanked out.

    Line structure is preserved (newlines kept) so line numbers still
    line up. A small state machine is plenty for this codebase; raw
    strings are not used anywhere in src/.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
            continue
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.splitlines()
        self.code_lines = strip_comments_and_strings(self.raw).splitlines()


def find_sources(root, subdir="src"):
    result = []
    top = os.path.join(root, subdir)
    for dirpath, _, filenames in os.walk(top):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                full = os.path.join(dirpath, name)
                result.append(os.path.relpath(full, root).replace(os.sep, "/"))
    return sorted(result)


# ---------------------------------------------------------------------------
# Config files
# ---------------------------------------------------------------------------


class ConfigError(Exception):
    pass


def load_allowlist(path):
    """Allowlist lines: ``<relpath> <regex>`` (regex matched against the
    raw source line). ``#`` comments and blank lines are skipped."""
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ConfigError(
                    f"{path}:{lineno}: expected '<relpath> <regex>'")
            relpath, pattern = parts
            try:
                entries.append((relpath, re.compile(pattern)))
            except re.error as err:
                raise ConfigError(f"{path}:{lineno}: bad regex: {err}")
    return entries


def load_budgets(path):
    """Budget lines: ``<relpath-glob> <token> <max>``."""
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ConfigError(
                    f"{path}:{lineno}: expected '<glob> <token> <max>'")
            glob, token, budget = parts
            if token not in BUDGET_TOKENS:
                raise ConfigError(
                    f"{path}:{lineno}: unknown token '{token}' "
                    f"(known: {', '.join(sorted(BUDGET_TOKENS))})")
            try:
                entries.append((glob, token, int(budget)))
            except ValueError:
                raise ConfigError(f"{path}:{lineno}: budget must be an int")
    return entries


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def check_transcendentals(files, allowlist, violations):
    hot = [f for f in files
           if any(fnmatch.fnmatch(f.relpath, g) for g in HOT_PATH_GLOBS)]
    for src in hot:
        applicable = [rx for (rel, rx) in allowlist if rel == src.relpath]
        for idx, code in enumerate(src.code_lines):
            if not TRANSCENDENTAL_RE.search(code):
                continue
            window = src.code_lines[max(0, idx - OP_COUNTER_WINDOW):idx + 1]
            if any(OP_COUNTER_RE.search(w) for w in window):
                continue  # accounted by an adjacent op counter
            raw = src.raw_lines[idx] if idx < len(src.raw_lines) else code
            if any(rx.search(raw) for rx in applicable):
                continue  # explicitly allowlisted
            violations.append(
                ("hot-path-transcendental", src.relpath, idx + 1,
                 f"unaccounted transcendental call: '{raw.strip()}' — add an "
                 f"ops::Count* call within {OP_COUNTER_WINDOW} lines above, "
                 f"or justify it in tools/lint/transcendental_allowlist.txt"))


def check_service_budgets(files, budgets, violations):
    service = [f for f in files if f.relpath.startswith("src/service/")]
    for src in service:
        counts = {}
        first_line = {}
        for idx, code in enumerate(src.code_lines):
            for token, rx in BUDGET_TOKENS.items():
                hits = len(rx.findall(code))
                if hits:
                    counts[token] = counts.get(token, 0) + hits
                    first_line.setdefault(token, idx + 1)
        for token, count in sorted(counts.items()):
            budget = 0
            for glob, btoken, bmax in budgets:
                if btoken == token and fnmatch.fnmatch(src.relpath, glob):
                    budget = max(budget, bmax)
            if count > budget:
                violations.append(
                    ("service-alloc-budget", src.relpath, first_line[token],
                     f"{count} '{token}' token(s), budget is {budget} — "
                     f"pool the allocation / use bqs::Mutex, or raise the "
                     f"budget in tools/lint/service_alloc_budget.txt"))


INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def check_include_hygiene(files, violations):
    closure = layer_closure()
    for src in files:
        parts = src.relpath.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        layer = parts[1]
        if layer not in closure:
            violations.append(
                ("include-hygiene", src.relpath, 1,
                 f"unknown layer '{layer}' — add it to LAYER_DEPS in "
                 f"tools/lint/repo_lint.py"))
            continue
        allowed = closure[layer]
        # Raw lines: the comment/string stripper blanks the quoted path.
        for idx, code in enumerate(src.raw_lines):
            m = INCLUDE_RE.match(code)
            if not m:
                continue
            target = m.group(1).split("/")[0]
            if target in LAYER_DEPS and target not in allowed:
                violations.append(
                    ("include-hygiene", src.relpath, idx + 1,
                     f"layer '{layer}' may not include layer '{target}' "
                     f"(allowed: {', '.join(sorted(allowed))}) — the layer "
                     f"DAG mirrors the CMake link graph"))


def check_fault_injection_containment(files, violations):
    for src in files:
        if src.relpath in FAULT_INJECTION_ALLOWLIST:
            continue
        for idx, code in enumerate(src.code_lines):
            raw = src.raw_lines[idx] if idx < len(src.raw_lines) else code
            # Token hits come from comment-stripped code; the include hit
            # needs the raw line (the stripper blanks the quoted path).
            if not (FAULT_TOKEN_RE.search(code)
                    or FAULT_INCLUDE_RE.match(raw)):
                continue
            violations.append(
                ("fault-injection-containment", src.relpath, idx + 1,
                 "fault-injection harness referenced outside its "
                 "containment: only "
                 f"{', '.join(sorted(FAULT_INJECTION_ALLOWLIST))} may name "
                 "FaultInjector/FaultSite or include "
                 "common/fault_injector.h (tests and fuzzers outside "
                 "src/ are unrestricted)"))


def check_file_io_containment(files, violations):
    for src in files:
        if (src.relpath in FILE_IO_ALLOWLIST
                or src.relpath.startswith(FILE_IO_LAYER_PREFIX)):
            continue
        for idx, code in enumerate(src.code_lines):
            if not FILE_IO_TOKEN_RE.search(code):
                continue
            raw = src.raw_lines[idx] if idx < len(src.raw_lines) else code
            violations.append(
                ("file-io-containment", src.relpath, idx + 1,
                 f"file I/O outside the storage layer: '{raw.strip()}' — "
                 "durable state goes through src/storage (CRC-framed, "
                 "fsync-gated, crash-sweep tested); if this is a new "
                 "import/export boundary, pin it in FILE_IO_ALLOWLIST in "
                 "tools/lint/repo_lint.py where a reviewer sees it"))


def check_intrinsics_containment(files, violations):
    for src in files:
        if src.relpath in INTRINSICS_ALLOWLIST:
            continue
        for idx, code in enumerate(src.code_lines):
            raw = src.raw_lines[idx] if idx < len(src.raw_lines) else code
            # Token hits come from comment-stripped code; the include hit
            # needs the raw line (the stripper leaves <...> paths alone,
            # but matching raw keeps the two rules symmetric).
            if not (INTRINSIC_TOKEN_RE.search(code)
                    or INTRINSIC_INCLUDE_RE.match(raw)):
                continue
            violations.append(
                ("intrinsics-containment", src.relpath, idx + 1,
                 "SIMD intrinsics outside the dispatch layer: only "
                 f"{', '.join(sorted(INTRINSICS_ALLOWLIST))} may include an "
                 "x86 intrinsics header or use _mm*/__m128/__m256 tokens — "
                 "add a lane op to the V wrapper structs and a width-generic "
                 "body to common/simd_lanes.h instead"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(root, allowlist_path, budget_path, out=sys.stdout):
    try:
        allowlist = load_allowlist(allowlist_path)
        budgets = load_budgets(budget_path)
    except (ConfigError, OSError) as err:
        print(f"repo_lint: config error: {err}", file=out)
        return 2

    relpaths = find_sources(root)
    if not relpaths:
        print(f"repo_lint: config error: no sources under {root}/src",
              file=out)
        return 2
    files = [SourceFile(root, rel) for rel in relpaths]

    violations = []
    check_transcendentals(files, allowlist, violations)
    check_service_budgets(files, budgets, violations)
    check_include_hygiene(files, violations)
    check_fault_injection_containment(files, violations)
    check_file_io_containment(files, violations)
    check_intrinsics_containment(files, violations)

    for rule, relpath, line, message in violations:
        print(f"{relpath}:{line}: [{rule}] {message}", file=out)
    if violations:
        print(f"repo_lint: {len(violations)} violation(s) in "
              f"{len(files)} files", file=out)
        return 1
    print(f"repo_lint: clean ({len(files)} files checked)", file=out)
    return 0


def main(argv=None):
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", required=True,
                        help="repository root (directory containing src/)")
    parser.add_argument("--allowlist",
                        default=os.path.join(here,
                                             "transcendental_allowlist.txt"))
    parser.add_argument("--budget",
                        default=os.path.join(here, "service_alloc_budget.txt"))
    args = parser.parse_args(argv)
    return run(args.root, args.allowlist, args.budget)


if __name__ == "__main__":
    sys.exit(main())
