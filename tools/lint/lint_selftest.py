#!/usr/bin/env python3
"""Self-test for repo_lint.py.

Builds throwaway mini source trees, seeds violations of each rule, and
asserts the linter (a) flags them with the right rule tag and exit code
1, (b) passes the corresponding clean variants with exit code 0, and
(c) rejects malformed config with exit code 2. This runs as a ctest
suite so the lint gate can never silently become a no-op: if a rule
stops firing, this test fails before the rule's absence can hide a real
regression.
"""

import io
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import repo_lint  # noqa: E402


CLEAN_CORE = """\
#include "core/bounds.h"
#include "trajectory/point.h"

namespace bqs {
double Accounted(double y, double x) {
  ops::CountAtan2();
  return std::atan2(y, x);
}
}  // namespace bqs
"""

CLEAN_SERVICE = """\
#include "service/spsc_ring.h"
#include "eval/runner.h"

namespace bqs {
void Pump() {}
}  // namespace bqs
"""


class LintHarness(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="bqs_lint_selftest_")
        self.addCleanup(shutil.rmtree, self.root)
        self.allowlist = self._config("allow.txt", "")
        self.budget = self._config(
            "budget.txt", "src/service/* std::mutex 0\n")

    def _config(self, name, content):
        path = os.path.join(self.root, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def write(self, relpath, content):
        full = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as f:
            f.write(content)

    def lint(self):
        out = io.StringIO()
        code = repo_lint.run(self.root, self.allowlist, self.budget, out=out)
        return code, out.getvalue()

    # -- baseline ----------------------------------------------------------

    def test_clean_tree_passes(self):
        self.write("src/core/bounds.cc", CLEAN_CORE)
        self.write("src/service/fleet.cc", CLEAN_SERVICE)
        code, out = self.lint()
        self.assertEqual(code, 0, out)
        self.assertIn("clean", out)

    def test_empty_tree_is_config_error(self):
        code, out = self.lint()
        self.assertEqual(code, 2, out)

    # -- hot-path-transcendental ------------------------------------------

    def test_unaccounted_transcendental_fails(self):
        self.write("src/core/bounds.cc",
                   "double f(double x) { return std::sqrt(x); }\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("hot-path-transcendental", out)
        self.assertIn("src/core/bounds.cc:1", out)

    def test_counted_transcendental_passes(self):
        self.write("src/core/bounds.cc",
                   "double f(double x) {\n"
                   "  ops::CountSqrt();\n"
                   "  return std::sqrt(x);\n"
                   "}\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_counter_outside_window_fails(self):
        filler = "  int a = 0;\n" * (repo_lint.OP_COUNTER_WINDOW + 1)
        self.write("src/core/bounds.cc",
                   "double f(double x) {\n"
                   "  ops::CountSqrt();\n" + filler +
                   "  return std::sqrt(x);\n"
                   "}\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)

    def test_allowlisted_transcendental_passes(self):
        self.write("src/core/bounds.cc",
                   "double f(double x) { return std::sqrt(x); }\n")
        self.allowlist = self._config(
            "allow2.txt", "src/core/bounds.cc std::sqrt\\(x\\)\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_allowlist_is_per_file(self):
        self.write("src/core/other.cc",
                   "double f(double x) { return std::sqrt(x); }\n")
        self.allowlist = self._config(
            "allow3.txt", "src/core/bounds.cc std::sqrt\\(x\\)\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)

    def test_comments_and_strings_ignored(self):
        self.write("src/core/bounds.cc",
                   "// std::sqrt(x) in a comment\n"
                   "/* std::atan2(y, x) in a block */\n"
                   'const char* s = "std::sin(x)";\n')
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_cold_layer_not_scanned(self):
        self.write("src/core/ok.cc", "int x = 0;\n")
        self.write("src/geo/geodesy.cc",
                   "double f(double x) { return std::sqrt(x); }\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    # -- service-alloc-budget ---------------------------------------------

    def test_service_mutex_fails_at_zero_budget(self):
        self.write("src/service/fleet.cc",
                   "#include <mutex>\nstd::mutex mu;\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("service-alloc-budget", out)
        self.assertIn("std::mutex", out)

    def test_service_mutex_passes_with_raised_budget(self):
        self.write("src/service/fleet.cc",
                   "#include <mutex>\nstd::mutex mu;\n")
        self.budget = self._config(
            "budget2.txt", "src/service/* std::mutex 1\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_naked_new_fails(self):
        self.write("src/service/fleet.cc", "int* p = new int(3);\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("'new'", out)

    def test_new_substring_does_not_trip(self):
        self.write("src/service/fleet.cc",
                   "void NewWindow();\nint renewal = 0;\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_budget_only_applies_to_service(self):
        self.write("src/eval/runner.cc", "int* p = new int(3);\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    # -- include-hygiene ---------------------------------------------------

    def test_layer_inversion_fails(self):
        self.write("src/geometry/vec.cc", '#include "core/bounds.h"\n')
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("include-hygiene", out)
        self.assertIn("'geometry' may not include layer 'core'", out)

    def test_downward_include_passes(self):
        self.write("src/service/fleet.cc", '#include "eval/runner.h"\n'
                                           '#include "common/status.h"\n')
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_service_may_include_storage(self):
        # The fleet engine owns a WAL sink; service -> storage is a real
        # link edge in CMake and must be a legal include direction.
        self.write("src/service/fleet.cc",
                   '#include "storage/keypoint_wal.h"\n')
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_sibling_include_fails(self):
        self.write("src/baselines/dp.cc", '#include "simulation/vehicle.h"\n')
        code, out = self.lint()
        self.assertEqual(code, 1, out)

    def test_system_includes_ignored(self):
        self.write("src/common/status.cc",
                   "#include <vector>\n#include <mutex>\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    # -- fault-injection-containment ---------------------------------------

    def test_fault_injector_in_core_fails(self):
        self.write("src/core/bounds.cc",
                   "namespace bqs { class FaultInjector; }\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("fault-injection-containment", out)
        self.assertIn("src/core/bounds.cc:1", out)

    def test_fault_injector_include_outside_allowlist_fails(self):
        self.write("src/eval/runner.cc",
                   '#include "common/fault_injector.h"\n')
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("fault-injection-containment", out)

    def test_fault_site_token_fails(self):
        self.write("src/storage/writer.cc",
                   "int f(bqs::FaultSite s);\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("fault-injection-containment", out)

    def test_fault_injector_in_allowlisted_consumers_passes(self):
        self.write("src/service/fleet_engine.cc",
                   '#include "common/fault_injector.h"\n'
                   "namespace bqs { FaultInjector* fi = nullptr; }\n")
        self.write("src/storage/keypoint_wal.cc",
                   '#include "common/fault_injector.h"\n'
                   "namespace bqs { FaultInjector* wal_fi = nullptr; }\n")
        self.write("src/common/fault_injector.h",
                   "namespace bqs { class FaultInjector {}; }\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_fault_injector_in_compaction_pipeline_passes(self):
        # The compaction pipeline and its manifest I/O expose injection
        # options (crash points, ENOSPC, rename failures) and are pinned
        # in the allowlist alongside the WAL writer.
        self.write("src/storage/compaction.cc",
                   '#include "common/fault_injector.h"\n'
                   "namespace bqs { FaultInjector* comp_fi = nullptr; }\n")
        self.write("src/storage/manifest.cc",
                   '#include "common/fault_injector.h"\n'
                   "namespace bqs { bool Fire(FaultSite s); }\n")
        self.write("src/common/fault_injector.h",
                   "namespace bqs { class FaultInjector {}; }\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_fault_mention_in_comment_passes(self):
        self.write("src/core/bounds.cc",
                   "// see FaultInjector in common/fault_injector.h\n"
                   "int x = 0;\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    # -- file-io-containment -----------------------------------------------

    def test_ofstream_outside_storage_fails(self):
        self.write("src/core/bounds.cc",
                   "#include <fstream>\n"
                   'std::ofstream out("dump.txt");\n')
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("file-io-containment", out)
        self.assertIn("src/core/bounds.cc:2", out)

    def test_fopen_in_service_fails(self):
        self.write("src/service/fleet.cc",
                   'void Dump() { (void)fopen("x", "w"); }\n')
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("file-io-containment", out)

    def test_posix_write_outside_storage_fails(self):
        self.write("src/eval/runner.cc",
                   "void f(int fd) { ::write(fd, 0, 0); }\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("file-io-containment", out)

    def test_storage_layer_may_do_file_io(self):
        self.write("src/storage/keypoint_wal.cc",
                   "#include <filesystem>\n"
                   "#include <fstream>\n"
                   "void f(int fd) { fdatasync(fd); }\n"
                   'std::ifstream in("wal-000001.log");\n')
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_compaction_files_may_do_file_io(self):
        # The compaction pipeline lives under src/storage/ and is covered
        # by the layer prefix, not by per-file pins: atomic publication
        # needs the full fstream/filesystem/fsync vocabulary.
        self.write("src/storage/compaction.cc",
                   "#include <filesystem>\n"
                   "#include <fstream>\n"
                   'std::ifstream in("blk-000001.bqb");\n')
        self.write("src/storage/manifest.cc",
                   "#include <fstream>\n"
                   "void Publish(int fd) { fsync(fd); }\n"
                   'std::ofstream tmp("MANIFEST.tmp");\n')
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_allowlisted_io_boundaries_pass(self):
        self.write("src/trajectory/csv_io.cc",
                   "#include <fstream>\n"
                   'std::ofstream out("t.csv");\n')
        self.write("src/eval/table.cc",
                   "#include <fstream>\n"
                   'std::ofstream out("report.md");\n')
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_file_io_mention_in_comment_passes(self):
        self.write("src/core/bounds.cc",
                   "// persisted via std::ofstream in the storage layer\n"
                   "int x = 0;\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    # -- intrinsics-containment --------------------------------------------

    def test_intrinsic_token_in_core_fails(self):
        self.write("src/core/bounds.cc",
                   "__m256d v = _mm256_set1_pd(0.0);\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("intrinsics-containment", out)
        self.assertIn("src/core/bounds.cc:1", out)

    def test_intrinsic_include_outside_allowlist_fails(self):
        self.write("src/geometry/vec.cc", "#include <immintrin.h>\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("intrinsics-containment", out)

    def test_sse_header_outside_allowlist_fails(self):
        self.write("src/common/simd.cc", "#include <emmintrin.h>\n")
        code, out = self.lint()
        self.assertEqual(code, 1, out)
        self.assertIn("intrinsics-containment", out)

    def test_intrinsics_in_allowlisted_tier_pass(self):
        self.write("src/common/simd_avx2.cc",
                   "#include <immintrin.h>\n"
                   "__m256d v = _mm256_setzero_pd();\n")
        self.write("src/common/simd_sse2.cc",
                   "#include <emmintrin.h>\n"
                   "__m128d w = _mm_setzero_pd();\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    def test_intrinsic_mention_in_comment_passes(self):
        self.write("src/core/bounds.cc",
                   "// the _mm256_max_pd reduction lives in simd_avx2.cc\n"
                   "int x = 0;\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    # -- config parsing ----------------------------------------------------

    def test_malformed_allowlist_is_exit_2(self):
        self.write("src/core/ok.cc", "int x = 0;\n")
        self.allowlist = self._config("bad.txt", "only-one-field\n")
        code, out = self.lint()
        self.assertEqual(code, 2, out)
        self.assertIn("config error", out)

    def test_bad_allowlist_regex_is_exit_2(self):
        self.write("src/core/ok.cc", "int x = 0;\n")
        self.allowlist = self._config("bad2.txt", "src/core/ok.cc ([bad\n")
        code, out = self.lint()
        self.assertEqual(code, 2, out)

    def test_unknown_budget_token_is_exit_2(self):
        self.write("src/core/ok.cc", "int x = 0;\n")
        self.budget = self._config("bad3.txt", "src/service/* calloc 0\n")
        code, out = self.lint()
        self.assertEqual(code, 2, out)

    def test_comments_allowed_in_config(self):
        self.write("src/core/ok.cc", "int x = 0;\n")
        self.allowlist = self._config(
            "ok.txt", "# a comment\n\nsrc/core/ok.cc whatever\n")
        code, out = self.lint()
        self.assertEqual(code, 0, out)

    # -- the real repo -----------------------------------------------------

    def test_real_repo_is_clean_with_committed_config(self):
        here = os.path.dirname(os.path.abspath(__file__))
        repo_root = os.path.dirname(os.path.dirname(here))
        out = io.StringIO()
        code = repo_lint.run(
            repo_root,
            os.path.join(here, "transcendental_allowlist.txt"),
            os.path.join(here, "service_alloc_budget.txt"),
            out=out)
        self.assertEqual(code, 0, out.getvalue())


if __name__ == "__main__":
    unittest.main(verbosity=2)
